// Priority-ordered whitelist rule table — the software twin of the switch's
// whitelist match stage. Whitelist semantics: a key that matches any
// label-0 rule is benign; a key matching no rule (or only label-1 rules,
// when present) is treated as malicious.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "rules/range_rule.hpp"

namespace iguard::rules {

class RuleTable {
 public:
  RuleTable() = default;
  explicit RuleTable(std::vector<RangeRule> rules) { set_rules(std::move(rules)); }

  void set_rules(std::vector<RangeRule> rules);
  void add_rule(RangeRule rule);

  std::size_t size() const { return rules_.size(); }
  const std::vector<RangeRule>& rules() const { return rules_; }

  /// First matching rule in priority order.
  std::optional<RangeRule> match(std::span<const std::uint32_t> key) const;

  /// Classification under whitelist semantics: 0 if a benign rule matches,
  /// else 1 (no-match defaults to malicious).
  int classify(std::span<const std::uint32_t> key) const;

 private:
  std::vector<RangeRule> rules_;  // kept sorted by priority
};

}  // namespace iguard::rules
