# Empty compiler generated dependencies file for iguard_core.
# This may be replaced when dependencies are built.
