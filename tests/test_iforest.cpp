#include "ml/iforest.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iguard::ml {
namespace {

Matrix gaussian_blob(std::size_t n, std::size_t m, double mean, double sd, Rng& rng) {
  Matrix x(n, m);
  for (auto& v : x.flat()) v = rng.normal(mean, sd);
  return x;
}

TEST(AveragePathLength, KnownValues) {
  EXPECT_DOUBLE_EQ(average_path_length(0), 0.0);
  EXPECT_DOUBLE_EQ(average_path_length(1), 0.0);
  EXPECT_DOUBLE_EQ(average_path_length(2), 1.0);
  // c(n) = 2 H(n-1) - 2 (n-1)/n with H(i) ~ ln(i) + gamma.
  const double c256 = average_path_length(256);
  EXPECT_NEAR(c256, 2.0 * (std::log(255.0) + 0.5772156649) - 2.0 * 255.0 / 256.0, 1e-9);
  EXPECT_GT(average_path_length(1000), average_path_length(100));
}

TEST(IsolationForest, OutlierGetsShorterPathAndHigherScore) {
  Rng rng(17);
  Matrix x = gaussian_blob(512, 3, 0.0, 1.0, rng);
  IsolationForest f({.num_trees = 100, .subsample = 128, .contamination = 0.05});
  f.fit(x, rng);

  const double inlier[] = {0.0, 0.0, 0.0};
  const double outlier[] = {9.0, -9.0, 9.0};
  EXPECT_LT(f.expected_path_length(outlier), f.expected_path_length(inlier));
  EXPECT_GT(f.anomaly_score(outlier), f.anomaly_score(inlier));
  EXPECT_GT(f.anomaly_score(outlier), 0.6);
  EXPECT_LT(f.anomaly_score(inlier), 0.55);
}

TEST(IsolationForest, ScoreInUnitInterval) {
  Rng rng(23);
  Matrix x = gaussian_blob(256, 2, 5.0, 2.0, rng);
  IsolationForest f({.num_trees = 50, .subsample = 64, .contamination = 0.1});
  f.fit(x, rng);
  for (int i = 0; i < 50; ++i) {
    const double p[] = {rng.uniform(-20.0, 20.0), rng.uniform(-20.0, 20.0)};
    const double s = f.anomaly_score(p);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForest, PathLengthBoundedByHeightCapPlusAdjustment) {
  Rng rng(5);
  Matrix x = gaussian_blob(512, 2, 0.0, 1.0, rng);
  const std::size_t psi = 128;
  IsolationForest f({.num_trees = 20, .subsample = psi, .contamination = 0.05});
  f.fit(x, rng);
  const double cap = std::ceil(std::log2(static_cast<double>(psi)));
  for (const auto& tree : f.trees()) {
    for (const auto& n : tree.nodes) {
      EXPECT_LE(n.depth, cap);
    }
  }
}

TEST(IsolationForest, ContaminationControlsThreshold) {
  Rng rng(29);
  Matrix x = gaussian_blob(1000, 2, 0.0, 1.0, rng);
  IsolationForest strict({.num_trees = 50, .subsample = 128, .contamination = 0.01});
  IsolationForest loose({.num_trees = 50, .subsample = 128, .contamination = 0.30});
  Rng r1(7), r2(7);
  strict.fit(x, r1);
  loose.fit(x, r2);
  // Looser contamination => lower score threshold => more anomalies.
  EXPECT_LT(loose.threshold(), strict.threshold());
}

TEST(IsolationForest, DeterministicGivenSeed) {
  Matrix x;
  {
    Rng rng(31);
    x = gaussian_blob(200, 2, 0.0, 1.0, rng);
  }
  IsolationForest a({.num_trees = 10, .subsample = 64, .contamination = 0.1});
  IsolationForest b({.num_trees = 10, .subsample = 64, .contamination = 0.1});
  Rng r1(99), r2(99);
  a.fit(x, r1);
  b.fit(x, r2);
  const double p[] = {0.3, -0.4};
  EXPECT_DOUBLE_EQ(a.anomaly_score(p), b.anomaly_score(p));
}

TEST(IsolationForest, EmptyFitThrows) {
  IsolationForest f;
  Rng rng(1);
  Matrix empty;
  EXPECT_THROW(f.fit(empty, rng), std::invalid_argument);
}

TEST(IsolationForest, ConstantDataBecomesLeafOnly) {
  Matrix x(50, 2, 3.0);
  IsolationForest f({.num_trees = 5, .subsample = 32, .contamination = 0.1});
  Rng rng(2);
  f.fit(x, rng);
  for (const auto& tree : f.trees()) {
    EXPECT_EQ(tree.nodes.size(), 1u);  // cannot split identical samples
  }
}

}  // namespace
}  // namespace iguard::ml
