#!/usr/bin/env bash
# Full verification sweep: build + ctest plain, then under each sanitizer.
# Usage: scripts/check.sh [--fast|--bench-smoke]
#   --fast         plain build/test only (skip the sanitizer matrix)
#   --bench-smoke  Release build + bench_throughput --smoke: fails if the
#                  compiled match engine diverges from the linear scan, if
#                  sharded replay is non-deterministic, if the steady-state
#                  packet path allocates, or if the JSON artifact is malformed
set -euo pipefail

cd "$(dirname "$0")/.."
GENERATOR_ARGS=()
command -v ninja >/dev/null 2>&1 && GENERATOR_ARGS=(-G Ninja)
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_suite() {
  local name="$1" sanitize="$2"
  local dir="build-check-${name}"
  echo "=== ${name} (IGUARD_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" -DIGUARD_SANITIZE="${sanitize}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

bench_smoke() {
  local dir="build-check-bench"
  echo "=== bench-smoke (Release) ==="
  cmake -B "${dir}" -S . "${GENERATOR_ARGS[@]}" \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${dir}" -j "${JOBS}" --target bench_throughput
  local out="${dir}/BENCH_pipeline_smoke.json"
  # The bench itself exits non-zero on engine divergence, non-deterministic
  # sharding, or steady-state allocations — the drift gates.
  "${dir}/bench/bench_throughput" --smoke --out "${out}"
  # Artifact sanity: well-formed JSON with the verdict fields present and
  # the two engines in agreement.
  python3 - "${out}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    j = json.load(f)
for key in ("configs", "speedup_compiled_vs_linear",
            "steady_state_allocs_per_packet", "compiled_equals_linear",
            "sharded_deterministic"):
    assert key in j, f"BENCH_pipeline json missing {key!r}"
assert j["compiled_equals_linear"] is True, "engine verdicts diverge"
assert j["sharded_deterministic"] is True, "sharded replay non-deterministic"
assert j["steady_state_allocs_per_packet"] == 0, "steady-state path allocates"
engines = {c["engine"] for c in j["configs"]}
assert engines == {"linear", "compiled"}, f"unexpected engines {engines}"
print("bench-smoke artifact OK:", sys.argv[1])
EOF
}

if [[ "${1:-}" == "--bench-smoke" ]]; then
  bench_smoke
  echo "=== bench smoke passed ==="
  exit 0
fi

run_suite plain ""
if [[ "${1:-}" != "--fast" ]]; then
  run_suite ubsan undefined
  run_suite asan address
  run_suite tsan thread
fi
echo "=== all checks passed ==="
