// PCA-based anomaly detector (Fig. 10 candidate): standardise, take the top
// principal components covering `variance_to_keep` of total variance, and
// score a sample by the norm of its reconstruction residual — anomalies lie
// off the benign subspace. Eigen-decomposition is a classical cyclic Jacobi
// sweep, exact enough for the <= 50-dim covariance matrices used here.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/detector.hpp"
#include "ml/scaler.hpp"

namespace iguard::ml {

/// Jacobi eigen-decomposition of a symmetric matrix. Returns eigenvalues in
/// descending order; eigenvectors() rows correspond to eigenvalues.
struct SymmetricEigen {
  std::vector<double> values;
  Matrix vectors;  // row i = eigenvector of values[i]
};
SymmetricEigen jacobi_eigen(const Matrix& sym, std::size_t max_sweeps = 64);

struct PcaDetectorConfig {
  double variance_to_keep = 0.90;
  double threshold_quantile = 0.98;
};

class PcaDetector : public AnomalyDetector {
 public:
  explicit PcaDetector(PcaDetectorConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& benign, Rng& rng) override;
  double score(std::span<const double> x) override;
  double threshold() const override { return threshold_; }
  void set_threshold(double t) override { threshold_ = t; }
  std::string name() const override { return "pca"; }

  std::size_t components() const { return components_.rows(); }

 private:
  PcaDetectorConfig cfg_;
  StandardScaler scaler_;
  Matrix components_;  // k x m, orthonormal rows
  double threshold_ = 0.0;
  std::vector<double> z_, proj_;
};

}  // namespace iguard::ml
