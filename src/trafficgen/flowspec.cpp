#include "trafficgen/flowspec.hpp"

#include <algorithm>
#include <cmath>

namespace iguard::traffic {

Trace emit_packets(std::span<const FlowSpec> specs, ml::Rng& rng) {
  Trace out;
  out.packets.reserve(total_packets(specs));
  for (const auto& s : specs) {
    double t = s.start;
    for (std::size_t i = 0; i < s.packets; ++i) {
      Packet p;
      p.ts = t;
      p.ft = s.ft;
      const double raw = rng.normal(s.size_mu, s.size_sigma);
      p.length = static_cast<std::uint16_t>(std::clamp(raw, 40.0, 1500.0));
      p.ttl = s.ttl;
      p.flags = (i == 0) ? s.first_flag
                         : (s.ft.proto == kProtoTcp ? TcpFlag::kAck : TcpFlag::kNone);
      p.malicious = s.malicious;
      p.flow_id = s.flow_id;
      out.packets.push_back(p);
      // Lognormal multiplicative jitter with unit mean:
      // E[exp(sigma*Z - sigma^2/2)] = 1, so ipd_mean is the true mean gap.
      const double jitter =
          s.ipd_jitter_sigma > 0.0
              ? std::exp(s.ipd_jitter_sigma * rng.normal() -
                         0.5 * s.ipd_jitter_sigma * s.ipd_jitter_sigma)
              : 1.0;
      t += std::max(1e-7, s.ipd_mean * jitter);
    }
  }
  out.sort_by_time();
  return out;
}

std::size_t total_packets(std::span<const FlowSpec> specs) {
  std::size_t n = 0;
  for (const auto& s : specs) n += s.packets;
  return n;
}

}  // namespace iguard::traffic
