// Reusable parallelism layer: a small persistent thread pool with a blocking
// parallel_for, plus deterministic per-task RNG stream derivation. The
// contract every user of this header relies on:
//
//   * parallel_for(n, fn) invokes fn(i) exactly once for every i in [0, n);
//     scheduling is dynamic (an atomic index), so which *thread* runs a task
//     is nondeterministic — but a task may depend only on its index and on
//     immutable shared inputs, never on other tasks or on thread identity.
//   * Randomised tasks draw from task_rng(seed, index), an independent
//     stream derived purely from (seed, index). Together these make every
//     parallel computation bit-identical across thread counts and runs.
//
// The pool is cheap enough to create per training call (workers are lazy;
// a 1-thread pool spawns none and runs inline).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ml/rng.hpp"
#include "obs/metrics.hpp"

namespace iguard::ml {

/// Resolve a user-facing thread-count knob: 0 = hardware concurrency.
inline std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<std::size_t>(hw) : 1;
}

/// splitmix64 finaliser: decorrelates adjacent seeds (seed ^ index for
/// consecutive indices differ in few bits; mt19937_64 seeded with raw
/// near-equal values produces visibly correlated streams).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Independent RNG stream for task `index` under root `seed`: a pure
/// function of (seed, index), so results never depend on thread count or
/// on the order tasks were claimed.
inline Rng task_rng(std::uint64_t seed, std::uint64_t index) {
  return Rng(mix64(seed ^ mix64(index)));
}

/// Fixed-size pool of `size() - 1` worker threads; the caller of
/// parallel_for participates as the remaining thread. Jobs are dispatched
/// one at a time (parallel_for blocks until the job drains), which is all
/// the coarse-grained training loops here need.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = 0)
      : threads_(resolve_threads(num_threads)) {
    workers_.reserve(threads_ - 1);
    for (std::size_t t = 0; t + 1 < threads_; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return threads_; }

  /// Attach observability instruments (DESIGN.md §4d): a task counter
  /// (integer, hence deterministic) plus queue-wait and task-run wall-time
  /// histograms, namespaced "timing." so determinism gates exclude them.
  /// The registry is caller-owned and must outlive the pool. Histograms are
  /// shared across workers — recording is relaxed-atomic and lock-free.
  void set_metrics(obs::Registry* r, const std::string& prefix = "pool") {
    if (r == nullptr || !r->enabled()) return;
    tasks_ = r->counter(prefix + ".tasks");
    queue_wait_ns_ =
        r->histogram("timing." + prefix + ".queue_wait_ns", obs::default_latency_bounds_ns());
    task_run_ns_ =
        r->histogram("timing." + prefix + ".task_run_ns", obs::default_latency_bounds_ns());
    timed_ = true;
  }

  /// Run fn(i) for every i in [0, n); blocks until all tasks finish. Tasks
  /// are claimed dynamically for load balance. If any task throws, the
  /// remaining tasks still run and the first exception is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (timed_) job_t0_ = std::chrono::steady_clock::now();
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) run_one(fn, i);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_fn_ = &fn;
      job_n_ = n;
      next_.store(0, std::memory_order_relaxed);
      active_ = workers_.size();
      ++generation_;
    }
    wake_cv_.notify_all();
    run_tasks(fn, n);  // the caller is a full participant
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return active_ == 0; });
    job_fn_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t n = 0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = job_fn_;
        n = job_n_;
      }
      run_tasks(*fn, n);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--active_ == 0) done_cv_.notify_one();
      }
    }
  }

  void run_tasks(const std::function<void(std::size_t)>& fn, std::size_t n) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        run_one(fn, i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  /// Execute one task, recording queue wait (dispatch -> start) and run
  /// time when instruments are attached. A task that throws is counted but
  /// its run time is not recorded.
  void run_one(const std::function<void(std::size_t)>& fn, std::size_t i) {
    if (!timed_) {
      fn(i);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    queue_wait_ns_.record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t0 - job_t0_).count()));
    tasks_.inc();
    fn(i);
    const auto t1 = std::chrono::steady_clock::now();
    task_run_ns_.record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_cv_, done_cv_;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  /// Observability (set_metrics). job_t0_ is written before dispatch and
  /// read by workers after the generation handshake, so it is synchronized.
  bool timed_ = false;
  obs::Counter tasks_;
  obs::Histogram queue_wait_ns_, task_run_ns_;
  std::chrono::steady_clock::time_point job_t0_{};
};

}  // namespace iguard::ml
