// Variational autoencoder (Fig. 10 candidate). Encoder outputs (mu, logvar)
// of a diagonal Gaussian posterior; training uses the reparameterisation
// trick z = mu + exp(logvar/2) * eps with loss MSE + beta * KL(q || N(0,I)).
// Anomaly score is the deterministic (z = mu) RMSE reconstruction error, in
// standardised feature space, mirroring the plain autoencoder's interface.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/detector.hpp"
#include "ml/nn.hpp"
#include "ml/scaler.hpp"

namespace iguard::ml {

struct VaeConfig {
  std::vector<std::size_t> encoder_hidden{24, 12};
  std::size_t latent = 4;
  std::vector<std::size_t> decoder_hidden{12};
  std::size_t epochs = 40;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  double beta = 0.05;  // KL weight
  double threshold_quantile = 0.98;
};

class Vae : public AnomalyDetector {
 public:
  explicit Vae(VaeConfig cfg = {}) : cfg_(std::move(cfg)) {}

  void fit(const Matrix& benign, Rng& rng) override;
  double score(std::span<const double> x) override { return reconstruction_error(x); }
  double threshold() const override { return threshold_; }
  void set_threshold(double t) override { threshold_ = t; }
  std::string name() const override { return "vae"; }

  /// RMSE with the posterior mean (no sampling).
  double reconstruction_error(std::span<const double> x);
  double final_loss() const { return final_loss_; }

 private:
  VaeConfig cfg_;
  StandardScaler scaler_;
  Mlp encoder_;  // m -> ... -> 2*latent (mu, logvar)
  Mlp decoder_;  // latent -> ... -> m
  double threshold_ = 0.0;
  double final_loss_ = 0.0;
  std::vector<double> zin_, zlat_;
};

}  // namespace iguard::ml
