// Model-swap benchmark and drift gate for the hitless swap loop
// (DESIGN.md §4e): replays a benign-drift workload through the pipeline
// with the swap loop off and on, measures the per-packet cost of the
// versioned read path, and enforces the swap subsystem's correctness
// contract. It exits non-zero when any gate fails:
//
//   1. swap determinism  — swap-enabled sharded replay is bit-identical
//      across thread counts at 1/2/4/8 shards;
//   2. hitless no-op     — with the loop live but no trigger armed, every
//      data-plane observable matches a swap-disabled run byte for byte;
//   3. zero packet loss  — path counts and the confusion matrix both sum
//      to the packet count in every configuration, and every emitted
//      mirror is delivered or counted lost;
//   4. drift fires       — the drifting workload performs >= 1 publish
//      and retires every superseded version;
//   5. zero steady-state allocations with the loop pinned per packet.
//
//   bench_model_swap [--smoke] [--out <path>]
//
// --smoke shrinks the trace so the ctest gate stays fast under sanitizers.
// Also writes BENCH_model_swap_obs.json (swap.* counters/series) for the
// check.sh --swap-smoke byte-determinism comparison.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/alloc_counter.hpp"
#include "ml/rng.hpp"
#include "obs/metrics.hpp"
#include "switchsim/flow_state.hpp"
#include "switchsim/replay.hpp"

using namespace iguard;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Three-table vote whitelist over min packet size (feature 5): two broad
/// tables admit up to ~900 B, one narrow table only up to ~300 B. Drifted
/// benign traffic (~700 B) stays majority-benign but misses the narrow
/// table on every mirror — the sustained-miss regime the detector fires on.
core::VoteWhitelist swap_whitelist(const rules::Quantizer& q) {
  core::VoteWhitelist wl;
  wl.tree_count = 3;
  for (double cap : {900.0, 900.0, 300.0}) {
    std::vector<rules::FieldRange> box(switchsim::kSwitchFlFeatures, {0, q.domain_max()});
    box[5] = {0, q.quantize_value(5, cap)};
    wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
  }
  return wl;
}

/// Benign traffic whose packet size migrates mid-trace (small -> ~700 B),
/// with malicious large-packet flows mixed in throughout.
traffic::Trace drift_trace(std::size_t flows, std::size_t packets_per_flow, ml::Rng& rng) {
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 5 == 0;
    const bool drifted = f >= flows / 2;
    traffic::FiveTuple ft{0x0A000000u + static_cast<std::uint32_t>(f),
                          0x0B000000u + static_cast<std::uint32_t>(f % 7),
                          static_cast<std::uint16_t>(1024 + f), 443, traffic::kProtoTcp};
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      traffic::Packet p;
      p.ts = 0.001 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
             rng.uniform(0.0, 0.0005);
      p.ft = i % 2 == 0 ? ft : ft.reversed();
      if (mal) {
        p.length = static_cast<std::uint16_t>(1200 + rng.index(200));
      } else if (drifted) {
        p.length = static_cast<std::uint16_t>(650 + rng.index(100));
      } else {
        p.length = static_cast<std::uint16_t>(80 + rng.index(60));
      }
      p.malicious = mal;
      t.packets.push_back(p);
    }
  }
  t.sort_by_time();
  return t;
}

switchsim::PipelineConfig pipe_cfg(bool enable_swap, bool enable_drift) {
  switchsim::PipelineConfig cfg;
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 10.0;
  cfg.swap.enabled = enable_swap;
  cfg.swap.drift.enabled = enable_drift;
  cfg.swap.drift.window = 16;
  cfg.swap.drift.baseline_windows = 1;
  cfg.swap.drift.miss_rate_margin = 0.10;
  // A ~400 B size jump is ~25 quantised levels: out of per-field reach, so
  // the updater cannot absorb the drift and the miss rate must fire.
  cfg.swap.update.max_extension_per_field = 8;
  cfg.swap.publish_after_extensions = 0;  // drift is the only trigger
  cfg.swap.recent_capacity = 512;
  return cfg;
}

bool equal_observables(const switchsim::SimStats& a, const switchsim::SimStats& b) {
  return a.pred == b.pred && a.truth == b.truth && a.path_count == b.path_count &&
         a.tp == b.tp && a.fp == b.fp && a.tn == b.tn && a.fn == b.fn &&
         a.green_mirrors == b.green_mirrors &&
         a.benign_feature_mirrors == b.benign_feature_mirrors &&
         a.faults.leaked_packets == b.faults.leaked_packets;
}

bool conserved(const switchsim::SimStats& st, std::size_t expect_packets) {
  std::size_t paths = 0;
  for (const auto c : st.path_count) paths += c;
  return st.packets == expect_packets && paths == st.packets &&
         st.tp + st.fp + st.tn + st.fn == st.packets;
}

struct TimedRun {
  double packets_per_sec = 0.0;
  double ns_per_packet = 0.0;
};

TimedRun measure(const traffic::Trace& trace, const switchsim::PipelineConfig& cfg,
                 const switchsim::DeployedModel& dm, std::size_t reps) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t packets = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    switchsim::Pipeline pipe(cfg, dm);
    packets += pipe.run(trace).packets;
  }
  const double elapsed = seconds_since(t0);
  TimedRun r;
  r.packets_per_sec = static_cast<double>(packets) / elapsed;
  r.ns_per_packet = elapsed * 1e9 / static_cast<double>(packets);
  return r;
}

/// Steady-state allocation probe with the swap loop live: one long-lived
/// classified flow, the handle pinned on every packet. Must be exactly 0.
std::size_t steady_state_allocs(const switchsim::DeployedModel& dm) {
  auto cfg = pipe_cfg(true, false);
  cfg.swap.recent_capacity = 16;
  cfg.idle_timeout_delta = 1e6;
  cfg.record_labels = false;  // the one sanctioned steady-state allocator
  switchsim::Pipeline pipe(cfg, dm);
  switchsim::SimStats st;
  traffic::Packet p;
  p.ft = {0x0A000001u, 0x0A000002u, 4242, 443, traffic::kProtoTcp};
  p.length = 120;
  double ts = 0.0;
  for (int i = 0; i < 8; ++i) {
    p.ts = (ts += 0.001);
    pipe.process(p, st);
  }
  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 20000; ++i) {
    p.ts = (ts += 0.0001);
    pipe.process(p, st);
  }
  return harness::alloc_count() - before;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_model_swap.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_model_swap [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  // --- workload -------------------------------------------------------------
  ml::Rng rng(0x5A4Bull);
  const std::size_t flows = smoke ? 200 : 1200;
  const auto trace = drift_trace(flows, 8, rng);

  ml::Matrix fake(2, switchsim::kSwitchFlFeatures);
  for (std::size_t j = 0; j < switchsim::kSwitchFlFeatures; ++j) {
    fake(0, j) = 0.0;
    fake(1, j) = 1e6;
  }
  rules::Quantizer quant{16};
  quant.fit(fake);
  const auto wl = swap_whitelist(quant);
  switchsim::DeployedModel dm;
  dm.fl_tables = &wl;
  dm.fl_quantizer = &quant;

  // --- gate 1: swap determinism across shard and thread counts --------------
  bool swap_deterministic = true;
  const auto swap_cfg = pipe_cfg(true, true);
  switchsim::ShardedReplayResult drift_run;  // the K=1 run, reported below
  for (const std::size_t k : smoke ? std::vector<std::size_t>{1, 2}
                                   : std::vector<std::size_t>{1, 2, 4, 8}) {
    switchsim::ReplayConfig rc;
    rc.shards = k;
    rc.num_threads = 1;
    auto a = switchsim::replay_sharded(trace, swap_cfg, dm, rc);
    rc.num_threads = k;
    const auto b = switchsim::replay_sharded(trace, swap_cfg, dm, rc);
    swap_deterministic = swap_deterministic && equal_observables(a.stats, b.stats) &&
                         a.stats.swap.publishes == b.stats.swap.publishes &&
                         a.stats.swap.drift_fires == b.stats.swap.drift_fires &&
                         a.stats.swap.mirrors_applied == b.stats.swap.mirrors_applied &&
                         a.stats.swap.final_version == b.stats.swap.final_version &&
                         conserved(a.stats, trace.size());
    if (k == 1) drift_run = std::move(a);
  }

  // --- gate 2: hitless no-op equivalence ------------------------------------
  // Loop live but never triggered: mirrors flow, staging learns, nothing
  // publishes — the data plane must be byte-identical to swap-disabled.
  switchsim::Pipeline armed(pipe_cfg(true, false), dm);
  switchsim::Pipeline plain(pipe_cfg(false, false), dm);
  const auto st_armed = armed.run(trace);
  const auto st_plain = plain.run(trace);
  const bool hitless = equal_observables(st_armed, st_plain) &&
                       st_armed.swap.publishes == 0 && st_armed.swap.final_version == 1 &&
                       st_armed.swap.mirrors_applied == st_armed.faults.mirrors_delivered;

  // --- gate 3: packet + mirror conservation in the drifting run -------------
  bool no_loss = conserved(drift_run.stats, trace.size());
  for (const auto& s : drift_run.per_shard) {
    no_loss = no_loss &&
              s.faults.mirrors_delivered + s.faults.mirrors_lost == s.benign_feature_mirrors &&
              s.swap.mirrors_applied == s.faults.mirrors_delivered &&
              s.swap.bundles_retired == s.swap.publishes &&
              s.swap.final_version == 1 + s.swap.publishes;
  }

  // --- gate 4: the drifting workload actually swaps -------------------------
  const bool swapped = drift_run.stats.swap.publishes >= 1 &&
                       drift_run.stats.swap.drift_fires >= 1 &&
                       drift_run.stats.swap.final_version > 1;

  // --- gate 5: zero-allocation steady state (skipped under sanitizers) ------
  const std::size_t steady_allocs =
      harness::alloc_counting_active() ? steady_state_allocs(dm) : 0;

  // --- timing: versioned read path vs fixed engine --------------------------
  const std::size_t reps = smoke ? 1 : 3;
  const auto t_off = measure(trace, pipe_cfg(false, false), dm, reps);
  const auto t_on = measure(trace, pipe_cfg(true, true), dm, reps);
  const double overhead_ns = t_on.ns_per_packet - t_off.ns_per_packet;

  // --- observability artifact -----------------------------------------------
  // One instrumented 2-shard replay; swap.* counters and the miss-rate
  // series land next to the §4d pipeline metrics. Non-"timing." keys are
  // byte-deterministic (check.sh --swap-smoke asserts so).
  {
    obs::Registry reg;
    auto ocfg = pipe_cfg(true, true);
    ocfg.metrics = &reg;
    switchsim::ReplayConfig rc;
    rc.shards = 2;
    (void)switchsim::replay_sharded(trace, ocfg, dm, rc);
    reg.gauge("host.hardware_threads")
        .set(static_cast<double>(std::thread::hardware_concurrency()));
    std::ofstream of("BENCH_model_swap_obs.json");
    of << obs::to_json(reg.snapshot());
  }

  // --- report ---------------------------------------------------------------
  const auto& sw = drift_run.stats.swap;
  std::ostringstream js;
  js << "{\n"
     << "  \"smoke\": " << json_bool(smoke) << ",\n"
     << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"trace_packets\": " << trace.size() << ",\n"
     << "  \"alloc_counting_active\": " << json_bool(harness::alloc_counting_active()) << ",\n"
     << "  \"drift_run\": {\"publishes\": " << sw.publishes
     << ", \"drift_fires\": " << sw.drift_fires
     << ", \"rebuilds\": " << sw.rebuilds
     << ", \"coalesced_triggers\": " << sw.coalesced_triggers
     << ", \"bundles_retired\": " << sw.bundles_retired
     << ", \"final_version\": " << sw.final_version
     << ", \"mirrors_applied\": " << sw.mirrors_applied
     << ", \"extensions_applied\": " << sw.extensions_applied
     << ", \"rejected_by_budget\": " << sw.rejected_by_budget << "},\n"
     << "  \"swap_off_ns_per_packet\": " << t_off.ns_per_packet << ",\n"
     << "  \"swap_on_ns_per_packet\": " << t_on.ns_per_packet << ",\n"
     << "  \"swap_overhead_ns_per_packet\": " << overhead_ns << ",\n"
     << "  \"swap_off_packets_per_sec\": " << t_off.packets_per_sec << ",\n"
     << "  \"swap_on_packets_per_sec\": " << t_on.packets_per_sec << ",\n"
     << "  \"steady_state_allocs_per_packet\": " << steady_allocs << ",\n"
     << "  \"swap_deterministic\": " << json_bool(swap_deterministic) << ",\n"
     << "  \"hitless_noop_equivalent\": " << json_bool(hitless) << ",\n"
     << "  \"no_packet_loss\": " << json_bool(no_loss) << ",\n"
     << "  \"drift_swapped\": " << json_bool(swapped) << "\n"
     << "}\n";

  std::ofstream f(out_path);
  f << js.str();
  f.close();
  std::cout << js.str();

  if (!swap_deterministic) {
    std::cerr << "FAIL: swap-enabled replay is not bit-identical across thread counts\n";
    return 1;
  }
  if (!hitless) {
    std::cerr << "FAIL: un-triggered swap loop perturbed the data plane\n";
    return 1;
  }
  if (!no_loss) {
    std::cerr << "FAIL: packet or mirror accounting does not balance\n";
    return 1;
  }
  if (!swapped) {
    std::cerr << "FAIL: drifting workload never published a new model version\n";
    return 1;
  }
  if (steady_allocs != 0) {
    std::cerr << "FAIL: swap-enabled steady-state path performed " << steady_allocs
              << " heap allocations\n";
    return 1;
  }
  return 0;
}
