#include "rules/range_rule.hpp"

#include <algorithm>
#include <sstream>

namespace iguard::rules {

std::string to_string(const RangeRule& r) {
  std::ostringstream os;
  os << "label=" << r.label << " prio=" << r.priority << " ";
  for (std::size_t i = 0; i < r.fields.size(); ++i) {
    os << "f" << i << ":[" << r.fields[i].lo << "," << r.fields[i].hi << "]";
    if (i + 1 < r.fields.size()) os << " ";
  }
  return os.str();
}

bool mergeable(const RangeRule& a, const RangeRule& b, std::size_t* diff_field) {
  if (a.label != b.label || a.fields.size() != b.fields.size()) return false;
  std::size_t diff = a.fields.size();
  for (std::size_t i = 0; i < a.fields.size(); ++i) {
    if (a.fields[i] == b.fields[i]) continue;
    if (diff != a.fields.size()) return false;  // differ in >1 field
    diff = i;
  }
  if (diff == a.fields.size()) {
    // Identical rules merge trivially.
    if (diff_field) *diff_field = 0;
    return true;
  }
  const auto& fa = a.fields[diff];
  const auto& fb = b.fields[diff];
  // Adjacent or overlapping intervals form one interval.
  const bool joinable =
      (fa.hi >= fb.lo || fa.hi + 1 == fb.lo) && (fb.hi >= fa.lo || fb.hi + 1 == fa.lo);
  if (joinable && diff_field) *diff_field = diff;
  return joinable;
}

std::vector<RangeRule> merge_rules(std::vector<RangeRule> rules) {
  // Quadratic pairwise merging is fine for the rule-set sizes a switch can
  // hold; for pathological inputs we bail out rather than burn minutes.
  constexpr std::size_t kMergeCap = 6000;
  if (rules.size() > kMergeCap) return rules;

  std::vector<bool> dead(rules.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (dead[i]) continue;
      for (std::size_t j = i + 1; j < rules.size(); ++j) {
        if (dead[j]) continue;
        std::size_t f = 0;
        if (!mergeable(rules[i], rules[j], &f)) continue;
        rules[i].fields[f].lo = std::min(rules[i].fields[f].lo, rules[j].fields[f].lo);
        rules[i].fields[f].hi = std::max(rules[i].fields[f].hi, rules[j].fields[f].hi);
        rules[i].priority = std::min(rules[i].priority, rules[j].priority);
        dead[j] = true;
        changed = true;  // rules[i] grew; rescan against it next round
      }
    }
  }
  std::vector<RangeRule> out;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!dead[i]) out.push_back(std::move(rules[i]));
  }
  return out;
}

}  // namespace iguard::rules
