// Serving-daemon tests (DESIGN.md §4i): record framing against split reads,
// Prometheus exposition determinism, alert-stream conservation against the
// daemon's own counters, threaded-vs-synchronous parity, hot reload through
// the hitless swap path, and the regression gates for the overload-gate
// token-precision fix, the ring close protocol, and the chaos burst-
// multiplier validation.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "daemon/config_file.hpp"
#include "daemon/daemon.hpp"
#include "daemon/http.hpp"
#include "daemon/source.hpp"
#include "io/chaos.hpp"
#include "io/overload.hpp"
#include "ml/rng.hpp"
#include "obs/metrics.hpp"
#include "trafficgen/pcap_io.hpp"

namespace iguard::daemon {
namespace {

traffic::Packet mk(double ts, std::uint16_t len, std::uint32_t src, std::uint16_t sport,
                   bool mal = false) {
  traffic::Packet p;
  p.ts = ts;
  p.ft = {src, 0x0A0000FFu, sport, 443, traffic::kProtoTcp};
  p.length = len;
  p.malicious = mal;
  return p;
}

traffic::Trace make_trace(std::size_t flows, std::size_t packets_per_flow) {
  ml::Rng rng(0x1A9E57ull);
  traffic::Trace t;
  for (std::size_t f = 0; f < flows; ++f) {
    const bool mal = f % 3 == 0;
    for (std::size_t i = 0; i < packets_per_flow; ++i) {
      t.packets.push_back(mk(0.0008 * static_cast<double>(f) + 0.05 * static_cast<double>(i) +
                                 rng.uniform(0.0, 0.0005),
                             mal ? static_cast<std::uint16_t>(1200 + rng.index(200))
                                 : static_cast<std::uint16_t>(80 + rng.index(60)),
                             0x0A000000u + static_cast<std::uint32_t>(f),
                             static_cast<std::uint16_t>(1024 + f), mal));
    }
  }
  t.sort_by_time();
  return t;
}

/// One-tree whitelist over the switch FL features (the benchmark's
/// bootstrap): small packets pass, large ones are flagged.
struct Model {
  rules::Quantizer quant{16};
  core::VoteWhitelist wl;
  switchsim::DeployedModel dm;

  Model() {
    ml::Matrix fake(2, switchsim::kSwitchFlFeatures);
    for (std::size_t j = 0; j < switchsim::kSwitchFlFeatures; ++j) {
      fake(0, j) = 0.0;
      fake(1, j) = 1e6;
    }
    quant.fit(fake);
    wl.tree_count = 1;
    std::vector<rules::FieldRange> box(switchsim::kSwitchFlFeatures, {0, quant.domain_max()});
    box[5] = {0, quant.quantize_value(5, 600.0)};
    wl.tables.emplace_back(std::vector<rules::RangeRule>{{box, 0, 0}});
    dm.fl_tables = &wl;
    dm.fl_quantizer = &quant;
  }
};

/// Write `text` to a unique temp file and return its path.
std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary);
  out << text;
  return path;
}

DaemonConfig base_config(const std::string& trace_path) {
  DaemonConfig cfg;
  cfg.source.path = trace_path;
  cfg.pipeline.packet_threshold_n = 4;
  return cfg;
}

std::string strip_timing(const std::string& text) {
  std::string out;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t eol = text.find('\n', at);
    if (eol == std::string::npos) eol = text.size() - 1;
    const std::string_view line(text.data() + at, eol - at);
    if (line.find("iguard_timing_") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    at = eol + 1;
  }
  return out;
}

// --- satellite regressions --------------------------------------------------

// Token counting must not freeze when (elapsed * rate) crosses the double
// precision plateau at 2^53: after a long idle gap the gate rebases its
// event clock at the idle->busy edge, so per-packet token increments stay
// exact. Against a fixed t0 the increments fall below one ULP and the gate
// sheds everything it should have drained.
TEST(OverloadGateLongHorizon, TokensKeepFlowingPastThePrecisionPlateau) {
  io::OverloadConfig oc;
  oc.enabled = true;
  oc.queue_capacity = 4;
  oc.drain_rate_pps = 1e6;
  io::OverloadGate gate(oc);
  std::vector<traffic::Packet> out;

  gate.offer(mk(0.0, 100, 1, 1), out);  // starts the event clock at t0 = 0

  // 1e10 s later, (ts - t0) * rate = 1e16 > 2^53: each 1-token step is
  // below one ULP of the product, so a fixed-t0 gate stops draining.
  const double base = 1e10;
  for (int i = 0; i < 200; ++i) {
    gate.offer(mk(base + 1e-6 * i, 100, 2, static_cast<std::uint16_t>(i)), out);
  }
  gate.flush(out);

  EXPECT_EQ(gate.stats().shed, 0u);
  EXPECT_TRUE(gate.stats().conserved());
  EXPECT_EQ(out.size(), 201u);
}

// A producer that stops early (truncated source, shutdown) must end the
// pump via the ring's close signal instead of live-locking the consumer.
TEST(RingPump, TruncatedProducerEndsThePump) {
  const traffic::Trace t = make_trace(8, 8);
  io::RingPumpStats rs;
  const traffic::Trace out = io::pump_through_ring(t, 8, rs, 32);
  EXPECT_EQ(rs.pushed, 32u);
  EXPECT_EQ(rs.popped, 32u);
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.packets[i].ts, t.packets[i].ts) << i;
  }
}

TEST(RingPump, FullTraceRoundTripsUnchanged) {
  const traffic::Trace t = make_trace(6, 6);
  io::RingPumpStats rs;
  const traffic::Trace out = io::pump_through_ring(t, 4, rs);
  EXPECT_EQ(rs.pushed, t.size());
  EXPECT_EQ(rs.popped, t.size());
  EXPECT_EQ(out.packets.size(), t.packets.size());
}

// Non-finite / negative / absurd burst multipliers are rejected as config
// errors before the uint64 copy-count cast (which would be UB).
TEST(ChaosBurstValidation, RejectsUncastableMultipliers) {
  const std::string csv = io::trace_to_csv(make_trace(3, 3));
  for (const double bad :
       {std::nan(""), std::numeric_limits<double>::infinity(), -2.0, 1e18}) {
    switchsim::FaultConfig fc;
    fc.bursts.push_back({0.0, 1.0, bad});
    EXPECT_FALSE(switchsim::validate_config(fc).empty()) << bad;
    io::ChaosStats cs;
    try {
      io::mangle_csv(csv, fc, 16, cs);
      FAIL() << "mangle_csv accepted burst multiplier " << bad;
    } catch (const switchsim::ConfigError& e) {
      EXPECT_EQ(e.structure(), "FaultConfig");
      EXPECT_EQ(e.field(), "bursts.multiplier");
    }
  }
  // Sub-unit multipliers stay legal: burst_multiplier_at clamps them to 1.
  switchsim::FaultConfig ok;
  ok.bursts.push_back({0.0, 1.0, 0.25});
  EXPECT_TRUE(switchsim::validate_config(ok).empty());
}

// --- record framer ----------------------------------------------------------

TEST(RecordFramer, ReassemblesCsvRecordsAcrossArbitrarySplits) {
  const traffic::Trace t = make_trace(5, 4);
  const std::string csv = io::trace_to_csv(t);
  RecordFramer framer(1 << 20);
  std::string batch;
  std::size_t records = 0;
  std::string reassembled;
  bool header_counted = false;
  for (std::size_t at = 0; at < csv.size(); at += 7) {
    framer.feed(std::string_view(csv).substr(at, 7));
    std::size_t n = 0;
    while ((n = framer.take_batch(batch, 3)) > 0) {
      EXPECT_LE(n, 3u);
      // Every batch is stand-alone: header line + complete records.
      EXPECT_EQ(batch.compare(0, batch.find('\n') + 1, csv, 0, csv.find('\n') + 1), 0);
      if (!header_counted) {
        reassembled += batch;
        header_counted = true;
      } else {
        reassembled += batch.substr(batch.find('\n') + 1);
      }
      records += n;
    }
  }
  std::string tail;
  framer.take_tail(tail);
  EXPECT_EQ(records, t.size());
  EXPECT_EQ(reassembled, csv);  // nothing lost, duplicated, or reordered
}

TEST(RecordFramer, OversizedPcapLengthIsFatalNotGuessed) {
  std::string bytes;
  const std::uint32_t magic = traffic::kPcapMagicLE;
  bytes.append(reinterpret_cast<const char*>(&magic), 4);
  bytes.append(20, '\0');  // rest of the global header
  // Record header whose incl_len (offset 8) claims 2 GiB.
  std::string rec(16, '\0');
  const std::uint32_t incl = 0x80000000u;
  rec.replace(8, 4, reinterpret_cast<const char*>(&incl), 4);
  bytes += rec;

  RecordFramer framer(1 << 20);
  framer.feed(bytes);
  std::string batch;
  EXPECT_EQ(framer.take_batch(batch, 8), 0u);
  EXPECT_TRUE(framer.fatal());
}

// --- Prometheus exposition --------------------------------------------------

TEST(Prometheus, DeterministicRenderingAndNameSanitisation) {
  obs::Registry reg;
  reg.counter("daemon.pushed").inc(5);
  reg.counter("pipeline.shard0.path.red").inc(2);
  reg.gauge("weird-key.with:colon").set(1.25);
  const double bounds[] = {1.0, 10.0};
  reg.histogram("timing.pipeline.process_ns", bounds).record(3.0);

  const std::string a = obs::to_prometheus(reg.snapshot());
  const std::string b = obs::to_prometheus(reg.snapshot());
  EXPECT_EQ(a, b);  // byte-identical across renders of the same state

  EXPECT_NE(a.find("# TYPE iguard_daemon_pushed untyped\niguard_daemon_pushed 5\n"),
            std::string::npos);
  EXPECT_NE(a.find("iguard_pipeline_shard0_path_red 2\n"), std::string::npos);
  // '-' and '.' sanitise to '_'; ':' is legal in the exposition format.
  EXPECT_NE(a.find("iguard_weird_key_with:colon 1.25\n"), std::string::npos);
  // Wall-clock instruments keep their "timing." namespace, prefixed.
  EXPECT_NE(a.find("iguard_timing_pipeline_process_ns"), std::string::npos);
  EXPECT_EQ(strip_timing(a).find("iguard_timing_"), std::string::npos);
}

TEST(Prometheus, SeriesRenderAsLabelledSamples) {
  obs::Registry reg;
  obs::Series s = reg.series("daemon.loop_packets", 8, 1);
  s.observe(10.0);
  s.observe(11.0);
  const std::string text = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE iguard_daemon_loop_packets untyped"), std::string::npos);
  EXPECT_NE(text.find("iguard_daemon_loop_packets{event=\""), std::string::npos);
  EXPECT_NE(text.find("} 10\n"), std::string::npos);
  EXPECT_NE(text.find("} 11\n"), std::string::npos);
}

// --- daemon end-to-end ------------------------------------------------------

TEST(Daemon, ServesLoopedTraceWithConservationAndDeterminism) {
  Model model;
  const std::string path =
      write_temp("daemon_loop.csv", io::trace_to_csv(make_trace(24, 6)));

  const auto run_once = [&](obs::Registry& reg) {
    DaemonConfig cfg = base_config(path);
    cfg.source.loops = 3;
    cfg.shards = 2;
    cfg.overload.enabled = true;
    cfg.overload.queue_capacity = 64;
    cfg.overload.drain_rate_pps = 200000.0;
    cfg.metrics = &reg;
    Daemon d(cfg, model.dm);
    d.run_synchronous();
    return std::make_pair(d.stats(), d.alerts().render());
  };

  obs::Registry reg_a, reg_b;
  const auto [sa, alerts_a] = run_once(reg_a);
  const auto [sb, alerts_b] = run_once(reg_b);

  EXPECT_EQ(audit_daemon_conservation(sa), "");
  EXPECT_EQ(sa.loops_completed, 3u);
  EXPECT_EQ(sa.ingest.offered, 3u * 24u * 6u);
  EXPECT_GT(sa.sim.flows_classified, 0u);

  // Two identical runs: identical stats, identical alert stream, identical
  // exposition modulo "timing." instruments.
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(alerts_a, alerts_b);
  EXPECT_EQ(strip_timing(obs::to_prometheus(reg_a.snapshot())),
            strip_timing(obs::to_prometheus(reg_b.snapshot())));
}

TEST(Daemon, ThreadedRunMatchesSynchronousRun) {
  Model model;
  const std::string path =
      write_temp("daemon_threaded.csv", io::trace_to_csv(make_trace(20, 6)));

  const auto run_mode = [&](bool threaded) {
    DaemonConfig cfg = base_config(path);
    cfg.source.loops = 2;
    cfg.shards = 2;
    cfg.ring_capacity = 64;
    Daemon d(cfg, model.dm);
    if (threaded) {
      d.run();
    } else {
      d.run_synchronous();
    }
    return d.stats();
  };

  const DaemonStats threaded = run_mode(true);
  const DaemonStats synchronous = run_mode(false);
  EXPECT_EQ(audit_daemon_conservation(threaded), "");
  EXPECT_EQ(threaded, synchronous);
}

TEST(Daemon, AlertTotalsMatchTheCountersTheyAnnounce) {
  Model model;
  // A trace with garbage lines (quarantine) plus a drain rate low enough to
  // shed: every alert kind must reconcile with the daemon's own accounting.
  std::string csv = io::trace_to_csv(make_trace(30, 6));
  csv += "garbage,line,not,a,packet\n";
  csv += "1,2,3\n";
  const std::string path = write_temp("daemon_alerts.csv", csv);

  DaemonConfig cfg = base_config(path);
  cfg.source.loops = 2;
  cfg.overload.enabled = true;
  cfg.overload.queue_capacity = 8;
  cfg.overload.drain_rate_pps = 100.0;  // well under the offered rate: sheds
  cfg.alert_check_every = 16;
  Daemon d(cfg, model.dm);
  d.run_synchronous();

  const DaemonStats s = d.stats();
  EXPECT_EQ(audit_daemon_conservation(s), "");
  EXPECT_GT(s.ingest.quarantined, 0u);
  EXPECT_GT(s.gate.shed, 0u);
  EXPECT_EQ(d.alerts().total(AlertKind::kQuarantine), s.ingest.quarantined);
  EXPECT_EQ(d.alerts().total(AlertKind::kShed), s.gate.shed);
  EXPECT_EQ(d.alerts().total(AlertKind::kBlacklistInstall),
            static_cast<std::uint64_t>(s.sim.faults.installs_applied));
  EXPECT_EQ(d.alerts().total(AlertKind::kSwapPublish),
            static_cast<std::uint64_t>(s.sim.swap.publishes));
  // The quarantined records themselves are retained for inspection.
  EXPECT_GT(d.quarantine().size(), 0u);
}

TEST(Daemon, HotReloadMidStreamKeepsEveryPacket) {
  Model model;
  const std::string path =
      write_temp("daemon_reload.csv", io::trace_to_csv(make_trace(24, 8)));

  DaemonConfig cfg = base_config(path);
  cfg.source.loops = 2;
  cfg.shards = 2;
  // Small chunks keep the source mid-pass across several pump_once() calls,
  // so the reload genuinely lands mid-stream.
  cfg.source.chunk_bytes = 512;
  cfg.overload.enabled = true;
  cfg.overload.queue_capacity = 64;
  cfg.overload.drain_rate_pps = 150000.0;
  cfg.pipeline.swap.enabled = true;
  cfg.pipeline.swap.publish_after_extensions = 0;
  Daemon d(cfg, model.dm);

  // Serve part of the stream, reload with a different drain rate, continue.
  for (int i = 0; i < 4; ++i) {
    d.pump_once();
    d.drain_some(static_cast<std::size_t>(-1));
  }
  DaemonConfig next = d.config_snapshot();
  next.overload.drain_rate_pps = 400000.0;
  EXPECT_EQ(d.request_reload(next), "");
  for (;;) {
    const Daemon::PumpStatus st = d.pump_once();
    d.drain_some(static_cast<std::size_t>(-1));
    if (st == Daemon::PumpStatus::kDone) break;
  }
  d.finalize();

  const DaemonStats s = d.stats();
  EXPECT_EQ(audit_daemon_conservation(s), "");  // no loss across the reload
  EXPECT_EQ(s.reloads_applied, 1u);
  EXPECT_EQ(s.reloads_rejected, 0u);
  EXPECT_EQ(d.config_snapshot().overload.drain_rate_pps, 400000.0);
  // The model half went through each shard's hitless swap loop and the
  // rebuilt version was published.
  EXPECT_EQ(s.sim.swap.operator_requests, 2u);
  EXPECT_GT(s.sim.swap.publishes, 0u);
  EXPECT_EQ(d.alerts().total(AlertKind::kReload), 1u);
  EXPECT_GT(d.alerts().total(AlertKind::kSwapPublish), 0u);
}

TEST(Daemon, StructuralReloadIsRejectedWithAReason) {
  Model model;
  const std::string path =
      write_temp("daemon_reject.csv", io::trace_to_csv(make_trace(6, 4)));
  DaemonConfig cfg = base_config(path);
  Daemon d(cfg, model.dm);

  DaemonConfig next = d.config_snapshot();
  next.shards = 4;
  const std::string reason = d.request_reload(next);
  EXPECT_NE(reason.find("shards"), std::string::npos);
  EXPECT_NE(reason.find("restart"), std::string::npos);

  DaemonConfig bad = d.config_snapshot();
  bad.ring_capacity = 0;
  EXPECT_FALSE(d.request_reload(bad).empty());

  d.run_synchronous();
  const DaemonStats s = d.stats();
  EXPECT_EQ(s.reloads_applied, 0u);
  EXPECT_EQ(s.reloads_rejected, 2u);
  EXPECT_EQ(audit_daemon_conservation(s), "");
}

TEST(Daemon, InvalidConfigThrowsStructuredError) {
  Model model;
  DaemonConfig cfg;  // no source.path
  try {
    Daemon d(cfg, model.dm);
    FAIL() << "constructor accepted an empty source path";
  } catch (const switchsim::ConfigError& e) {
    EXPECT_EQ(e.structure(), "DaemonConfig");
    EXPECT_EQ(e.field(), "source.path");
  }
  cfg.source.path = "x.csv";
  cfg.shards = 0;
  EXPECT_EQ(validate_config(cfg).substr(0, 6), "shards");
}

TEST(Daemon, RequestStopDrainsAndAuditsClean) {
  Model model;
  const std::string path =
      write_temp("daemon_stop.csv", io::trace_to_csv(make_trace(16, 6)));
  DaemonConfig cfg = base_config(path);
  cfg.source.loops = 0;  // forever — only request_stop can end it
  Daemon d(cfg, model.dm);

  for (int i = 0; i < 8; ++i) {
    d.pump_once();
    d.drain_some(static_cast<std::size_t>(-1));
  }
  d.request_stop();
  for (;;) {
    const Daemon::PumpStatus st = d.pump_once();
    d.drain_some(static_cast<std::size_t>(-1));
    if (st == Daemon::PumpStatus::kDone) break;
  }
  d.finalize();
  const DaemonStats s = d.stats();
  EXPECT_EQ(audit_daemon_conservation(s), "");
  EXPECT_GT(s.sim.packets, 0u);
}

// --- config file ------------------------------------------------------------

TEST(ConfigFile, ParsesKnobsAndRejectsTypos) {
  DaemonConfig cfg;
  const std::string text =
      "# serving config\n"
      "trace = /tmp/t.csv\n"
      "source.loops = 0\n"
      "shards = 2\n"
      "overload.enabled = true\n"
      "overload.policy = flow_hash\n"
      "overload.drain_rate_pps = 50000\n"
      "pipeline.swap.enabled = on\n"
      "alert_check_every = 64\n";
  EXPECT_EQ(parse_config_text(text, cfg), "");
  EXPECT_EQ(cfg.source.path, "/tmp/t.csv");
  EXPECT_EQ(cfg.source.loops, 0u);
  EXPECT_EQ(cfg.shards, 2u);
  EXPECT_TRUE(cfg.overload.enabled);
  EXPECT_EQ(cfg.overload.policy, io::ShedPolicy::kFlowHash);
  EXPECT_EQ(cfg.overload.drain_rate_pps, 50000.0);
  EXPECT_TRUE(cfg.pipeline.swap.enabled);
  EXPECT_EQ(cfg.alert_check_every, 64u);

  DaemonConfig c2;
  EXPECT_EQ(parse_config_text("shards = 2\nshardz = 3\n", c2),
            "line 2: unknown key 'shardz'");
  EXPECT_EQ(parse_config_text("shards = two\n", c2),
            "line 1: value 'two' for shards (want uint)");
  EXPECT_EQ(parse_config_text("shards\n", c2), "line 1: expected key = value");
}

// --- http endpoint ----------------------------------------------------------

TEST(HttpServer, ServesHandlerBodiesOnLoopback) {
  HttpServer srv;
  ASSERT_EQ(srv.start(0, [](const std::string& p) {
    HttpResponse r;
    if (p == "/metrics") {
      r.body = "iguard_up 1\n";
    } else {
      r.status = 404;
      r.body = "nope\n";
    }
    return r;
  }),
            "");
  ASSERT_GT(srv.port(), 0);

  // Tiny loopback client, enough to validate the response head + body.
  struct Client {
    static std::string fetch(std::uint16_t port, const std::string& path) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return {};
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return {};
      }
      const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
      (void)::write(fd, req.data(), req.size());
      std::string resp;
      char buf[512];
      ssize_t n = 0;
      while ((n = ::read(fd, buf, sizeof(buf))) > 0) resp.append(buf, n);
      ::close(fd);
      return resp;
    }
  };

  const std::string ok = Client::fetch(srv.port(), "/metrics");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(ok.find("\r\n\r\niguard_up 1\n"), std::string::npos);
  const std::string missing = Client::fetch(srv.port(), "/else");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);
  EXPECT_EQ(srv.requests(), 2u);
  srv.stop();
  EXPECT_FALSE(srv.running());
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Regression: a peer that disconnects before reading the response used to
// raise SIGPIPE on the server's next write, whose default action terminates
// the whole process. The body is sized well past any socket buffer so the
// write genuinely hits the dead connection.
TEST(HttpServer, SurvivesPeerDisconnectMidResponse) {
  HttpServer srv;
  const std::string big(4u << 20, 'x');
  ASSERT_EQ(srv.start(0, [&](const std::string& p) {
    HttpResponse r;
    r.body = p == "/big" ? big : "ok\n";
    return r;
  }),
            "");

  const int fd = connect_loopback(srv.port());
  ASSERT_GE(fd, 0);
  const std::string req = "GET /big HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  ::close(fd);  // walk away without reading the 4 MB response

  // The serving thread must still be alive and able to answer.
  const int fd2 = connect_loopback(srv.port());
  ASSERT_GE(fd2, 0);
  const std::string req2 = "GET /ping HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fd2, req2.data(), req2.size(), 0), static_cast<ssize_t>(req2.size()));
  std::string resp;
  char buf[256];
  ssize_t n = 0;
  while ((n = ::read(fd2, buf, sizeof(buf))) > 0) resp.append(buf, static_cast<std::size_t>(n));
  ::close(fd2);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("\r\n\r\nok\n"), std::string::npos);
  srv.stop();
}

// Regression: stop() used to block forever when a client connected and sent
// nothing — serve_loop sat in a timeout-less read() and never returned to
// accept(). The receive timeout bounds that wait.
TEST(HttpServer, StopReturnsDespiteIdleConnection) {
  HttpServer srv;
  ASSERT_EQ(srv.start(0, [](const std::string&) { return HttpResponse{}; }), "");

  const int fd = connect_loopback(srv.port());
  ASSERT_GE(fd, 0);
  // Give the serving thread a moment to accept and enter the head read.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto t0 = std::chrono::steady_clock::now();
  srv.stop();  // hung forever before the fix; now bounded by SO_RCVTIMEO
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(waited).count(), 5);
  EXPECT_FALSE(srv.running());
  ::close(fd);
}

// Regression: a reload accepted after a finite source completed was silently
// never applied — no pump/drain step runs again to reach the safe points, so
// reloads_applied stayed 0 with no kReload alert despite the "" acceptance.
TEST(Daemon, ReloadAfterSourceFinishedIsRejected) {
  Model model;
  const std::string path =
      write_temp("daemon_late_reload.csv", io::trace_to_csv(make_trace(6, 4)));
  DaemonConfig cfg = base_config(path);
  Daemon d(cfg, model.dm);
  d.run_synchronous();

  DaemonConfig next = d.config_snapshot();
  next.overload.drain_rate_pps = 123456.0;
  const std::string reason = d.request_reload(next);
  EXPECT_NE(reason.find("finished"), std::string::npos);
  EXPECT_NE(reason.find("restart"), std::string::npos);

  const DaemonStats s = d.stats();
  EXPECT_EQ(s.reloads_applied, 0u);
  EXPECT_EQ(s.reloads_rejected, 1u);
  EXPECT_EQ(audit_daemon_conservation(s), "");
}

}  // namespace
}  // namespace iguard::daemon
