// FlowSpec: the per-flow statistical recipe all generators share. A flow is
// described by distributions over packet size and inter-packet delay plus a
// packet budget; emit_packets() turns recipes into a time-ordered Trace.
// Controlling the recipe controls exactly the 13 flow-level features the
// detectors consume, which is what makes the synthetic substitution for the
// paper's PCAPs faithful (see DESIGN.md §1).
#pragma once

#include <vector>

#include "ml/rng.hpp"
#include "trafficgen/packet.hpp"

namespace iguard::traffic {

struct FlowSpec {
  FiveTuple ft;
  double start = 0.0;        // flow start time, seconds
  std::size_t packets = 1;   // packet budget
  double size_mu = 100.0;    // per-packet size ~ N(size_mu, size_sigma), clamped
  double size_sigma = 10.0;
  double ipd_mean = 0.1;         // per-packet gap = ipd_mean * lognormal jitter
  double ipd_jitter_sigma = 0.3; // sigma of the lognormal jitter (0 = strictly periodic)
  std::uint8_t ttl = 64;
  TcpFlag first_flag = TcpFlag::kNone;  // e.g. kSyn for TCP floods / scans
  bool malicious = false;
  std::uint32_t flow_id = 0;
};

/// Materialise packets for every spec and return them time-sorted.
/// Size clamp: [40, 1500] bytes (minimum IP packet to typical MTU).
Trace emit_packets(std::span<const FlowSpec> specs, ml::Rng& rng);

/// Sum of packet budgets (for sizing checks).
std::size_t total_packets(std::span<const FlowSpec> specs);

}  // namespace iguard::traffic
