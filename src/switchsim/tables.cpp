#include "switchsim/tables.hpp"

namespace iguard::switchsim {

bool BlacklistTable::contains_key(std::uint64_t k) {
  const auto it = entries_.find(k);
  if (it == entries_.end()) return false;
  if (policy_ == EvictionPolicy::kLru) touch(it->first);
  return true;
}

void BlacklistTable::touch(std::uint64_t k) {
  auto& stamp = entries_[k];
  by_stamp_.erase(stamp);
  stamp = ++clock_;
  by_stamp_.emplace(stamp, k);
}

bool BlacklistTable::install(const traffic::FiveTuple& ft) {
  if (capacity_ == 0) return false;
  const std::uint64_t k = key(ft);
  if (entries_.contains(k)) {
    if (policy_ == EvictionPolicy::kLru) touch(k);
    return false;
  }
  if (entries_.size() >= capacity_) {
    if (policy_ == EvictionPolicy::kFifo) {
      // Lazy compaction: erase() leaves withdrawn keys in the queue.
      while (!order_.empty() && !entries_.contains(order_.front())) order_.pop_front();
      if (!order_.empty()) {
        entries_.erase(order_.front());
        order_.pop_front();
        ++evictions_;
      }
    } else {
      const auto victim = by_stamp_.begin();
      entries_.erase(victim->second);
      by_stamp_.erase(victim);
      ++evictions_;
    }
  }
  const std::uint64_t stamp = ++clock_;
  entries_.emplace(k, stamp);
  // The install-order deque exists only for FIFO eviction; the stamp index
  // only for LRU. Maintaining the idle structure would grow it one entry
  // per install for the lifetime of the table without ever draining it.
  if (policy_ == EvictionPolicy::kFifo) {
    order_.push_back(k);
  } else {
    by_stamp_.emplace(stamp, k);
  }
  return true;
}

bool BlacklistTable::erase(const traffic::FiveTuple& ft) {
  const auto it = entries_.find(key(ft));
  if (it == entries_.end()) return false;
  if (policy_ == EvictionPolicy::kLru) by_stamp_.erase(it->second);
  entries_.erase(it);
  return true;
}

}  // namespace iguard::switchsim
