// Detection metrics used throughout the paper's evaluation: macro F1 over
// hard labels, and ROC AUC / PR AUC over soft scores (higher score = more
// anomalous). ROC AUC uses the Mann-Whitney rank formulation with mid-rank
// tie handling; PR AUC is average precision (step-wise integral).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iguard::eval {

struct Confusion {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  double accuracy() const;
};

Confusion confusion(std::span<const int> truth, std::span<const int> pred);

/// Per-class F1 for the given positive class (0 or 1).
double f1_for_class(const Confusion& c, int positive_class);
/// Macro F1: mean of the two per-class F1 scores.
double macro_f1(std::span<const int> truth, std::span<const int> pred);

/// Mann-Whitney ROC AUC (0.5 for constant scores).
double roc_auc(std::span<const int> truth, std::span<const double> score);

/// Average precision (PR AUC). Returns the positive prevalence when scores
/// are uninformative; 0 when there are no positives.
double pr_auc(std::span<const int> truth, std::span<const double> score);

struct DetectionMetrics {
  double macro_f1 = 0.0;
  double roc_auc = 0.0;
  double pr_auc = 0.0;
};

/// Bundle: hard metrics from `pred`, soft metrics from `score`.
DetectionMetrics evaluate(std::span<const int> truth, std::span<const int> pred,
                          std::span<const double> score);

/// Threshold scores at `thr` (score > thr => 1) and evaluate.
DetectionMetrics evaluate_scores(std::span<const int> truth, std::span<const double> score,
                                 double thr);

/// Threshold (score > thr => positive) maximising macro F1 on a labelled
/// validation set — the calibration the paper performs by grid search.
double best_f1_threshold(std::span<const int> truth, std::span<const double> score);

}  // namespace iguard::eval
