#include "ml/iforest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iguard::ml {

namespace {
constexpr double kEulerMascheroni = 0.5772156649015329;

// Recursive iTree builder over the rows of `data` selected by `idx`.
int build_node(const Matrix& data, std::vector<std::size_t>& idx, int depth,
               int height_cap, std::vector<ITreeNode>& nodes, Rng& rng) {
  const int self = static_cast<int>(nodes.size());
  nodes.push_back({});
  nodes[self].size = idx.size();
  nodes[self].depth = depth;
  if (idx.size() <= 1 || depth >= height_cap) return self;

  // Pick a random feature with spread; give up after a few tries (all-equal
  // nodes become leaves, matching the reference algorithm's behaviour).
  const std::size_t m = data.cols();
  int feature = -1;
  double lo = 0.0, hi = 0.0;
  for (std::size_t attempt = 0; attempt < 2 * m; ++attempt) {
    const std::size_t q = rng.index(m);
    lo = hi = data(idx[0], q);
    for (std::size_t r : idx) {
      lo = std::min(lo, data(r, q));
      hi = std::max(hi, data(r, q));
    }
    if (hi > lo) {
      feature = static_cast<int>(q);
      break;
    }
  }
  if (feature < 0) return self;

  const double p = rng.uniform(lo, hi);
  std::vector<std::size_t> left, right;
  for (std::size_t r : idx) {
    (data(r, static_cast<std::size_t>(feature)) < p ? left : right).push_back(r);
  }
  if (left.empty() || right.empty()) return self;  // degenerate split -> leaf

  nodes[self].feature = feature;
  nodes[self].threshold = p;
  idx.clear();
  idx.shrink_to_fit();
  const int l = build_node(data, left, depth + 1, height_cap, nodes, rng);
  const int r = build_node(data, right, depth + 1, height_cap, nodes, rng);
  nodes[self].left = l;
  nodes[self].right = r;
  return self;
}
}  // namespace

double average_path_length(std::size_t n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double nd = static_cast<double>(n);
  const double harmonic = std::log(nd - 1.0) + kEulerMascheroni;
  return 2.0 * harmonic - 2.0 * (nd - 1.0) / nd;
}

int ITree::leaf_index(std::span<const double> x) const {
  int i = 0;
  while (nodes[static_cast<std::size_t>(i)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(i)];
    i = x[static_cast<std::size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
  return i;
}

double ITree::path_length(std::span<const double> x) const {
  const auto& leaf = nodes[static_cast<std::size_t>(leaf_index(x))];
  return static_cast<double>(leaf.depth) + average_path_length(leaf.size);
}

std::size_t ITree::leaf_count() const {
  std::size_t c = 0;
  for (const auto& n : nodes) c += n.feature < 0 ? 1 : 0;
  return c;
}

void IsolationForest::fit(const Matrix& benign, Rng& rng) {
  if (benign.rows() == 0) throw std::invalid_argument("IsolationForest::fit: empty data");
  effective_psi_ = std::min(cfg_.subsample, benign.rows());
  const int height_cap =
      static_cast<int>(std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(effective_psi_)))));

  trees_.clear();
  trees_.reserve(cfg_.num_trees);
  for (std::size_t t = 0; t < cfg_.num_trees; ++t) {
    auto idx = rng.sample_without_replacement(benign.rows(), effective_psi_);
    ITree tree;
    build_node(benign, idx, 0, height_cap, tree.nodes, rng);
    trees_.push_back(std::move(tree));
  }

  // Threshold from contamination: the (1 - c) quantile of training scores.
  std::vector<double> scores(benign.rows());
  for (std::size_t i = 0; i < benign.rows(); ++i) scores[i] = anomaly_score(benign.row(i));
  std::sort(scores.begin(), scores.end());
  const double q = std::clamp(1.0 - cfg_.contamination, 0.0, 1.0);
  const std::size_t k =
      std::min(scores.size() - 1, static_cast<std::size_t>(q * static_cast<double>(scores.size())));
  threshold_ = scores[k];
}

double IsolationForest::expected_path_length(std::span<const double> x) const {
  if (trees_.empty()) throw std::logic_error("IsolationForest: not fitted");
  double total = 0.0;
  for (const auto& t : trees_) total += t.path_length(x);
  return total / static_cast<double>(trees_.size());
}

double IsolationForest::anomaly_score(std::span<const double> x) const {
  const double e = expected_path_length(x);
  const double c = average_path_length(effective_psi_);
  if (c <= 0.0) return 0.5;
  return std::pow(2.0, -e / c);
}

}  // namespace iguard::ml
