// Reproduces the §3.2.3 fidelity result: the consistency C between the
// compiled whitelist rules and the distilled iForest they were generated
// from, measured on each attack's test set and averaged across all 15
// attacks. The paper reports C = 0.992 .. 0.996 (residual disagreement
// comes from quantising split thresholds onto the integer rule domain).
#include <iostream>

#include "eval/report.hpp"
#include "harness/cpu_lab.hpp"

using namespace iguard;

int main() {
  harness::CpuLab lab{harness::CpuLabConfig{}};

  eval::Table table({"attack", "consistency C", "rules", "tables"});
  double sum = 0.0, lo = 1.0, hi = 0.0;
  std::size_t n = 0;

  for (const auto atk : traffic::all_attacks()) {
    const auto split = lab.make_attack_split(atk);
    const auto base_t = lab.calibrate_teacher(split);
    const auto ig = lab.train_iguard(split, base_t);
    sum += ig.consistency;
    lo = std::min(lo, ig.consistency);
    hi = std::max(hi, ig.consistency);
    ++n;
    table.add_row({traffic::attack_name(atk), eval::Table::num(ig.consistency, 4),
                   std::to_string(ig.guard->whitelist().total_rules()),
                   std::to_string(ig.guard->whitelist().tables.size())});
  }

  table.print(std::cout, "Whitelist-rule consistency vs distilled iForest");
  std::cout << "\naverage C = " << eval::Table::num(sum / static_cast<double>(n), 4)
            << "  range [" << eval::Table::num(lo, 4) << ", " << eval::Table::num(hi, 4)
            << "]   (paper: 0.992 .. 0.996)\n";
  table.write_csv("consistency.csv");
  return 0;
}
