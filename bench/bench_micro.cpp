// Component microbenchmarks (google-benchmark): the hot paths of the
// deployed system — hashing, register updates, rule matching, tree
// traversal, autoencoder inference — plus end-to-end packet processing in
// the pipeline simulator.
#include <benchmark/benchmark.h>

#include "core/iguard.hpp"
#include "harness/testbed_lab.hpp"
#include "switchsim/flow_state.hpp"
#include "switchsim/pipeline.hpp"
#include "trafficgen/attacks.hpp"
#include "trafficgen/benign.hpp"

using namespace iguard;

namespace {

traffic::Packet sample_packet() {
  traffic::Packet p;
  p.ts = 1.5;
  p.ft = {0xC0A80105u, 0x08080808u, 44321, 443, traffic::kProtoTcp};
  p.length = 512;
  p.ttl = 64;
  return p;
}

void BM_Bihash(benchmark::State& state) {
  const auto p = sample_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(traffic::bihash(p.ft, 42));
  }
}
BENCHMARK(BM_Bihash);

void BM_FlowStateUpdate(benchmark::State& state) {
  switchsim::IntFlowState st;
  auto p = sample_packet();
  for (auto _ : state) {
    p.ts += 1e-4;
    st.update(p, 12345);
    benchmark::DoNotOptimize(st.pkt_count);
  }
}
BENCHMARK(BM_FlowStateUpdate);

void BM_FlowStateFinalize(benchmark::State& state) {
  switchsim::IntFlowState st;
  auto p = sample_packet();
  for (int i = 0; i < 32; ++i) {
    p.ts += 1e-4;
    st.update(p, 12345);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(st.finalize());
  }
}
BENCHMARK(BM_FlowStateFinalize);

// One fully-trained deployment shared by the heavier benchmarks.
const harness::TestbedLab& lab() {
  static harness::TestbedLab instance{[] {
    harness::TestbedLabConfig cfg;
    cfg.benign_train_flows = 1200;
    cfg.benign_val_flows = 300;
    cfg.benign_test_flows = 300;
    cfg.attack_flows = 80;
    cfg.scale_grid = {1.1};
    cfg.teacher.num_threads = 0;  // 0 = hardware concurrency
    cfg.forest.num_threads = 0;
    return cfg;
  }()};
  return instance;
}

struct Deployed {
  std::unique_ptr<core::IGuard> guard;
  Deployed() {
    core::IGuardConfig gcfg;
    gcfg.teacher.base = ml::testbed_autoencoder_config();
    gcfg.teacher.num_threads = 0;
    gcfg.forest.num_threads = 0;
    guard = std::make_unique<core::IGuard>(gcfg);
    ml::Rng rng(7);
    guard->fit(lab().train_fl(), ml::Matrix{}, rng);
  }
};

const Deployed& deployed() {
  static Deployed d;
  return d;
}

void BM_RuleTableMatch(benchmark::State& state) {
  const auto& g = *deployed().guard;
  switchsim::IntFlowState st;
  auto p = sample_packet();
  for (int i = 0; i < 32; ++i) {
    p.ts += 1e-4;
    st.update(p, 12345);
  }
  const auto f = st.finalize();
  const auto key = g.quantizer().quantize(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.whitelist().classify(key));
  }
  state.counters["rules"] = static_cast<double>(g.whitelist().total_rules());
}
BENCHMARK(BM_RuleTableMatch);

void BM_GuidedForestVote(benchmark::State& state) {
  const auto& g = *deployed().guard;
  switchsim::IntFlowState st;
  auto p = sample_packet();
  for (int i = 0; i < 32; ++i) {
    p.ts += 1e-4;
    st.update(p, 12345);
  }
  const auto f = st.finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.predict_flow_model(f));
  }
}
BENCHMARK(BM_GuidedForestVote);

void BM_TeacherReconstruction(benchmark::State& state) {
  auto& g = *deployed().guard;
  switchsim::IntFlowState st;
  auto p = sample_packet();
  for (int i = 0; i < 32; ++i) {
    p.ts += 1e-4;
    st.update(p, 12345);
  }
  const auto f = st.finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.teacher().reconstruction_error(0, f));
  }
}
BENCHMARK(BM_TeacherReconstruction);

bool same_forest(const core::GuidedIsolationForest& a, const core::GuidedIsolationForest& b) {
  if (a.trees().size() != b.trees().size()) return false;
  for (std::size_t t = 0; t < a.trees().size(); ++t) {
    const auto& na = a.trees()[t].nodes;
    const auto& nb = b.trees()[t].nodes;
    if (na.size() != nb.size()) return false;
    for (std::size_t i = 0; i < na.size(); ++i) {
      if (na[i].feature != nb[i].feature || na[i].threshold != nb[i].threshold ||
          na[i].left != nb[i].left || na[i].right != nb[i].right ||
          na[i].label != nb[i].label || na[i].leaf_re != nb[i].leaf_re ||
          na[i].box_lo != nb[i].box_lo || na[i].box_hi != nb[i].box_hi) {
        return false;
      }
    }
  }
  return true;
}

// Forest fit throughput at a given thread count (arg 0; 0 = all cores).
// Run Arg(1) vs Arg(0) to read the parallel speedup directly; the
// "identical" counter asserts the parallel fit is bit-identical to the
// sequential one under the same seed.
void BM_GuidedForestFit(benchmark::State& state) {
  const auto& g = *deployed().guard;
  const ml::Matrix& train = lab().train_fl();
  core::GuidedForestConfig fcfg;
  fcfg.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::GuidedIsolationForest forest(fcfg);
    ml::Rng rng(7);
    forest.fit(train, g.teacher(), rng);
    benchmark::DoNotOptimize(forest.trees().size());
  }
  core::GuidedIsolationForest par(fcfg);
  {
    ml::Rng rng(7);
    par.fit(train, g.teacher(), rng);
  }
  core::GuidedForestConfig scfg = fcfg;
  scfg.num_threads = 1;
  core::GuidedIsolationForest seq(scfg);
  {
    ml::Rng rng(7);
    seq.fit(train, g.teacher(), rng);
  }
  state.counters["identical"] = same_forest(seq, par) ? 1.0 : 0.0;
}
BENCHMARK(BM_GuidedForestFit)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PipelineProcess(benchmark::State& state) {
  const auto& g = *deployed().guard;
  switchsim::DeployedModel dm;
  dm.fl_tables = &g.whitelist();
  dm.fl_quantizer = &g.quantizer();
  switchsim::PipelineConfig pcfg;
  switchsim::Pipeline pipe(pcfg, dm);
  switchsim::SimStats stats;

  traffic::BenignConfig bcfg;
  bcfg.flows = 300;
  ml::Rng rng(3);
  const auto trace = traffic::benign_trace(bcfg, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    pipe.process(trace.packets[i], stats);
    i = (i + 1) % trace.packets.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineProcess);

}  // namespace

BENCHMARK_MAIN();
