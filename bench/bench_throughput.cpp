// Replay-throughput benchmark for the packet-path overhaul (DESIGN.md §4c):
// replays a mixed benign+attack trace through the pipeline simulator with
// the linear-scan vs compiled interval-bitmap match engine at 1/2/4/8
// shards, and writes BENCH_pipeline.json (packets/sec, ns/packet,
// allocations/packet) so future PRs have a perf trajectory to regress
// against. Doubles as a drift gate: it exits non-zero if the two engines'
// per-packet verdicts diverge, if the sharded replay is not bit-identical
// across thread counts, or if the steady-state path allocates — which is
// how the ctest smoke entry catches match-engine regressions.
//
//   bench_throughput [--smoke] [--out <path>]
//
// --smoke shrinks the trace so the gate stays fast under sanitizers.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/alloc_counter.hpp"
#include "ml/rng.hpp"
#include "obs/metrics.hpp"
#include "switchsim/flow_state.hpp"
#include "switchsim/replay.hpp"
#include "trafficgen/attacks.hpp"
#include "trafficgen/benign.hpp"

using namespace iguard;

namespace {

struct RunResult {
  std::string engine;
  std::size_t shards = 0;
  double packets_per_sec = 0.0;
  double ns_per_packet = 0.0;
  double allocs_per_packet = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Per-tree whitelist with a controlled rule budget: `tables` tables of
/// `rules_per_table` hypercubes around sampled feature rows — the shape
/// compile_per_tree produces, without paying for teacher training in a
/// perf bench.
core::VoteWhitelist make_whitelist(const ml::Matrix& features, const rules::Quantizer& quant,
                                   std::size_t tables, std::size_t rules_per_table,
                                   ml::Rng& rng) {
  core::VoteWhitelist wl;
  wl.tree_count = tables;
  const std::uint32_t dmax = quant.domain_max();
  const std::uint32_t halfwidth = dmax / 6;
  for (std::size_t t = 0; t < tables; ++t) {
    std::vector<rules::RangeRule> tree_rules;
    for (std::size_t r = 0; r < rules_per_table; ++r) {
      const auto row = features.row(rng.index(features.rows()));
      std::vector<rules::FieldRange> box(features.cols());
      for (std::size_t j = 0; j < box.size(); ++j) {
        const std::uint32_t q = quant.quantize_value(j, row[j]);
        box[j] = {q > halfwidth ? q - halfwidth : 0,
                  q < dmax - halfwidth ? q + halfwidth : dmax};
      }
      tree_rules.push_back({std::move(box), 0, static_cast<int>(r)});
    }
    wl.tables.emplace_back(std::move(tree_rules));
  }
  return wl;
}

/// Synthetic deployment: `tables` x `rules_per_table` TCAM entries on BOTH
/// whitelists. The PL table is what every brown/orange packet consults, so
/// a realistic per-packet rule budget there is what makes the match-engine
/// comparison meaningful; the FL tables are hit on every finalisation.
struct SyntheticModel {
  rules::Quantizer fl_quant{16}, pl_quant{16};
  core::VoteWhitelist fl, pl;
  core::CompiledVoteWhitelist fl_compiled, pl_compiled;

  SyntheticModel(const traffic::Trace& trace, const ml::Matrix& fl_features,
                 std::size_t tables, std::size_t rules_per_table, ml::Rng& rng) {
    fl_quant.fit(fl_features);
    fl = make_whitelist(fl_features, fl_quant, tables, rules_per_table, rng);

    // PL features of sampled packets: {dst_port, proto, length, TTL}.
    const std::size_t n_pl = std::min<std::size_t>(trace.size(), 4096);
    ml::Matrix pl_features(n_pl, 4);
    for (std::size_t i = 0; i < n_pl; ++i) {
      const auto& p = trace.packets[rng.index(trace.size())];
      pl_features(i, 0) = static_cast<double>(p.ft.dst_port);
      pl_features(i, 1) = static_cast<double>(p.ft.proto);
      pl_features(i, 2) = static_cast<double>(p.length);
      pl_features(i, 3) = static_cast<double>(p.ttl);
    }
    pl_quant.fit(pl_features);
    pl = make_whitelist(pl_features, pl_quant, tables, rules_per_table, rng);

    // Compile once (a control-plane operation); every pipeline — including
    // all K shard pipelines — shares the read-only result.
    fl_compiled = core::CompiledVoteWhitelist(fl);
    pl_compiled = core::CompiledVoteWhitelist(pl);
  }

  switchsim::DeployedModel deployed() const {
    switchsim::DeployedModel dm;
    dm.fl_tables = &fl;
    dm.fl_quantizer = &fl_quant;
    dm.pl_tables = &pl;
    dm.pl_quantizer = &pl_quant;
    dm.fl_compiled = &fl_compiled;
    dm.pl_compiled = &pl_compiled;
    return dm;
  }
};

switchsim::PipelineConfig pipe_config(switchsim::MatchEngine engine, bool record_labels) {
  switchsim::PipelineConfig cfg;
  cfg.match_engine = engine;
  cfg.record_labels = record_labels;
  // n = 8 keeps finalisations frequent, so the FL tables are exercised on a
  // meaningful share of packets rather than once per long-lived flow.
  cfg.packet_threshold_n = 8;
  return cfg;
}

RunResult measure(const std::string& name, const traffic::Trace& trace,
                  const switchsim::DeployedModel& dm, switchsim::MatchEngine engine,
                  std::size_t shards, std::size_t reps) {
  RunResult r;
  r.engine = name;
  r.shards = shards;
  const std::size_t a0 = harness::alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t packets = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    switchsim::ReplayConfig rc;
    rc.shards = shards;
    const auto out =
        switchsim::replay_sharded(trace, pipe_config(engine, false), dm, rc);
    packets += out.stats.packets;
  }
  const double elapsed = seconds_since(t0);
  const std::size_t allocs = harness::alloc_count() - a0;
  r.packets_per_sec = static_cast<double>(packets) / elapsed;
  r.ns_per_packet = elapsed * 1e9 / static_cast<double>(packets);
  r.allocs_per_packet = static_cast<double>(allocs) / static_cast<double>(packets);
  return r;
}

/// Steady-state probe (mirrors tests/test_alloc_path.cpp): allocations per
/// packet once every flow in play is classified — must be exactly 0.
std::size_t steady_state_allocs(const switchsim::DeployedModel& dm) {
  auto cfg = pipe_config(switchsim::MatchEngine::kCompiled, false);
  cfg.packet_threshold_n = 4;
  cfg.idle_timeout_delta = 1e6;
  switchsim::Pipeline pipe(cfg, dm);
  switchsim::SimStats st;
  traffic::Packet p;
  p.ft = {0x0A000001u, 0x0A000002u, 4242, 443, traffic::kProtoTcp};
  p.length = 120;
  double ts = 0.0;
  for (int i = 0; i < 8; ++i) {
    p.ts = (ts += 0.001);
    pipe.process(p, st);  // classify the flow: purple from here on
  }
  const std::size_t before = harness::alloc_count();
  for (int i = 0; i < 20000; ++i) {
    p.ts = (ts += 0.0001);
    pipe.process(p, st);
  }
  return harness::alloc_count() - before;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_throughput [--smoke] [--out <path>]\n";
      return 2;
    }
  }

  // --- workload -------------------------------------------------------------
  // Flow-rich botnet + scan mix: thousands of short flows, so most packets
  // are pre-threshold (brown -> per-packet PL match) or finalisations
  // (blue -> FL match). This is the regime where the match engine is the
  // bottleneck — long-lived flood flows would hide it behind the blacklist
  // and stored-label fast paths (red/purple), which never consult rules.
  ml::Rng rng(0xBE7CAull);
  traffic::BenignConfig bcfg;
  bcfg.flows = smoke ? 30 : 600;
  traffic::AttackConfig acfg;
  acfg.flows = smoke ? 250 : 5000;
  const traffic::Trace benign = traffic::benign_trace(bcfg, rng);
  std::vector<traffic::Trace> parts;
  parts.push_back(benign);
  parts.push_back(traffic::attack_trace(traffic::AttackType::kMirai, acfg, rng));
  parts.push_back(traffic::attack_trace(traffic::AttackType::kAidra, acfg, rng));
  parts.push_back(traffic::attack_trace(traffic::AttackType::kOsScan, acfg, rng));
  const traffic::Trace trace = traffic::merge_traces(std::move(parts));

  // Whitelists are fitted on benign flows only (as in deployment), so the
  // attack majority of the trace misses every rule — the case where the
  // linear scan pays for the full table and the interval index does not.
  const auto features = switchsim::extract_switch_features(benign, 8, 10.0);
  const std::size_t rules_per_table = 512;  // >= the 64-rule acceptance floor
  const std::size_t tables = 5;             // 2560 entries: a realistic TCAM budget
  SyntheticModel model(benign, features.x, tables, rules_per_table, rng);
  const auto dm = model.deployed();

  // --- correctness gates ----------------------------------------------------
  // 1. Engine parity: per-packet verdicts must be bit-identical.
  switchsim::Pipeline lin(pipe_config(switchsim::MatchEngine::kLinear, true), dm);
  switchsim::Pipeline comp(pipe_config(switchsim::MatchEngine::kCompiled, true), dm);
  const auto st_lin = lin.run(trace);
  const auto st_comp = comp.run(trace);
  const bool engines_agree = st_lin.pred == st_comp.pred &&
                             st_lin.path_count == st_comp.path_count &&
                             st_lin.dropped == st_comp.dropped;

  // 2. Shard determinism: same K, different thread counts, same everything.
  switchsim::ReplayConfig det;
  det.shards = 4;
  det.num_threads = 1;
  const auto d1 = switchsim::replay_sharded(trace, pipe_config(switchsim::MatchEngine::kCompiled, true), dm, det);
  det.num_threads = 4;
  const auto d4 = switchsim::replay_sharded(trace, pipe_config(switchsim::MatchEngine::kCompiled, true), dm, det);
  const bool sharded_deterministic =
      d1.stats.pred == d4.stats.pred && d1.stats.dropped == d4.stats.dropped &&
      d1.stats.path_count == d4.stats.path_count;

  // 3. Zero-allocation steady state (skipped under sanitizers, which own
  //    the allocator and make the counter blind).
  const std::size_t steady_allocs =
      harness::alloc_counting_active() ? steady_state_allocs(dm) : 0;

  // --- timing sweep ---------------------------------------------------------
  const std::size_t reps = smoke ? 1 : 3;
  std::vector<RunResult> runs;
  runs.push_back(measure("linear", trace, dm, switchsim::MatchEngine::kLinear, 1, reps));
  for (const std::size_t shards : smoke ? std::vector<std::size_t>{1, 2}
                                        : std::vector<std::size_t>{1, 2, 4, 8}) {
    runs.push_back(measure("compiled", trace, dm, switchsim::MatchEngine::kCompiled, shards, reps));
  }
  const double speedup = runs[1].packets_per_sec / runs[0].packets_per_sec;

  // --- per-stage observability breakdown ------------------------------------
  // One instrumented 2-shard replay (DESIGN.md §4d): per-path packet counts
  // and latency histograms, occupancy gauges, control-plane counters, shard
  // wall times and pool queue waits. Written as a separate artifact so the
  // gate JSON above keeps its exact schema; non-"timing." keys in it are
  // byte-deterministic (check.sh --obs-smoke asserts so).
  {
    obs::Registry reg;
    auto ocfg = pipe_config(switchsim::MatchEngine::kCompiled, false);
    ocfg.metrics = &reg;
    switchsim::ReplayConfig rc;
    rc.shards = 2;
    (void)switchsim::replay_sharded(trace, ocfg, dm, rc);
    reg.gauge("host.hardware_threads")
        .set(static_cast<double>(std::thread::hardware_concurrency()));
    std::ofstream of("BENCH_pipeline_obs.json");
    of << obs::to_json(reg.snapshot());
  }

  // --- report ---------------------------------------------------------------
  std::ostringstream js;
  js << "{\n"
     << "  \"smoke\": " << json_bool(smoke) << ",\n"
     // Shard scaling is bounded by physical parallelism: on a 1-core host
     // the shard sweep measures overhead only (the determinism gate still
     // proves the sharded path correct at any thread count).
     << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
     << "  \"trace_packets\": " << trace.size() << ",\n"
     << "  \"fl_tables\": " << tables << ",\n"
     << "  \"fl_rules_per_table\": " << rules_per_table << ",\n"
     << "  \"alloc_counting_active\": " << json_bool(harness::alloc_counting_active()) << ",\n"
     << "  \"configs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    js << "    {\"engine\": \"" << r.engine << "\", \"shards\": " << r.shards
       << ", \"packets_per_sec\": " << r.packets_per_sec
       << ", \"ns_per_packet\": " << r.ns_per_packet
       << ", \"allocs_per_packet\": " << r.allocs_per_packet << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  js << "  ],\n"
     << "  \"path_counts\": {\"red\": " << st_lin.path(switchsim::Path::kRed)
     << ", \"brown\": " << st_lin.path(switchsim::Path::kBrown)
     << ", \"blue\": " << st_lin.path(switchsim::Path::kBlue)
     << ", \"purple\": " << st_lin.path(switchsim::Path::kPurple)
     << ", \"orange\": " << st_lin.path(switchsim::Path::kOrange) << "},\n"
     << "  \"speedup_compiled_vs_linear\": " << speedup << ",\n"
     << "  \"steady_state_allocs_per_packet\": " << steady_allocs << ",\n"
     << "  \"compiled_equals_linear\": " << json_bool(engines_agree) << ",\n"
     << "  \"sharded_deterministic\": " << json_bool(sharded_deterministic) << "\n"
     << "}\n";

  std::ofstream f(out_path);
  f << js.str();
  f.close();
  std::cout << js.str();

  if (!engines_agree) {
    std::cerr << "FAIL: compiled engine verdicts diverge from the linear scan\n";
    return 1;
  }
  if (!sharded_deterministic) {
    std::cerr << "FAIL: sharded replay is not bit-identical across thread counts\n";
    return 1;
  }
  if (steady_allocs != 0) {
    std::cerr << "FAIL: steady-state packet path performed " << steady_allocs
              << " heap allocations\n";
    return 1;
  }
  return 0;
}
