// Reproduces Fig. 5 (5 headline attacks) and Fig. 8 (10 further attacks):
// CPU detection performance — macro F1 / PR AUC / ROC AUC — of the
// conventional iForest, the Magnifier autoencoder, and iGuard, following
// the paper's protocol (benign-only training; validation with 20% attack
// traffic for threshold calibration and the (T) model-selection grid).
//
// Paper's shape to match: iGuard ~ Magnifier on all three metrics, and
// iGuard > iForest by 1.8-62.9% (F1), 5.7-72.2% (PRAUC), 1.8-62.8% (ROCAUC).
#include <cstdlib>
#include <iostream>

#include "eval/report.hpp"
#include "harness/cpu_lab.hpp"

using namespace iguard;

int main() {
  harness::CpuLab lab{harness::CpuLabConfig{}};

  eval::Table table({"attack", "model", "macro F1", "ROC AUC", "PR AUC", "T-scale"});
  double worst_f1_gain = 1e9, best_f1_gain = -1e9;
  double worst_pr_gain = 1e9, best_pr_gain = -1e9;
  double worst_roc_gain = 1e9, best_roc_gain = -1e9;

  const auto attacks = traffic::all_attacks();
  for (const auto atk : attacks) {
    const auto split = lab.make_attack_split(atk);
    const auto base_t = lab.calibrate_teacher(split);

    const auto m_if = lab.evaluate_detector(lab.iforest(), split);
    const auto m_ae = lab.evaluate_teacher(split, base_t);
    const auto ig = lab.train_iguard(split, base_t);

    const std::string name = traffic::attack_name(atk);
    table.add_row({name, "iForest", eval::Table::num(m_if.macro_f1),
                   eval::Table::num(m_if.roc_auc), eval::Table::num(m_if.pr_auc), "-"});
    table.add_row({name, "Magnifier", eval::Table::num(m_ae.macro_f1),
                   eval::Table::num(m_ae.roc_auc), eval::Table::num(m_ae.pr_auc), "-"});
    table.add_row({name, "iGuard", eval::Table::num(ig.model.macro_f1),
                   eval::Table::num(ig.model.roc_auc), eval::Table::num(ig.model.pr_auc),
                   eval::Table::num(ig.scale, 2)});

    const double f1_gain = 100.0 * (ig.model.macro_f1 - m_if.macro_f1);
    const double pr_gain = 100.0 * (ig.model.pr_auc - m_if.pr_auc);
    const double roc_gain = 100.0 * (ig.model.roc_auc - m_if.roc_auc);
    worst_f1_gain = std::min(worst_f1_gain, f1_gain);
    best_f1_gain = std::max(best_f1_gain, f1_gain);
    worst_pr_gain = std::min(worst_pr_gain, pr_gain);
    best_pr_gain = std::max(best_pr_gain, pr_gain);
    worst_roc_gain = std::min(worst_roc_gain, roc_gain);
    best_roc_gain = std::max(best_roc_gain, roc_gain);
  }

  table.print(std::cout, "Fig. 5 + Fig. 8: CPU detection, 15 attacks");
  std::cout << "\niGuard vs iForest gains (percentage points):\n"
            << "  macro F1: " << eval::Table::num(worst_f1_gain, 1) << " .. "
            << eval::Table::num(best_f1_gain, 1) << "   (paper: 1.8 .. 62.9)\n"
            << "  PR AUC:   " << eval::Table::num(worst_pr_gain, 1) << " .. "
            << eval::Table::num(best_pr_gain, 1) << "   (paper: 5.7 .. 72.2)\n"
            << "  ROC AUC:  " << eval::Table::num(worst_roc_gain, 1) << " .. "
            << eval::Table::num(best_roc_gain, 1) << "   (paper: 1.8 .. 62.8)\n";
  table.write_csv("fig5_fig8_cpu_detection.csv");
  return 0;
}
