// Ingest-domain chaos (DESIGN.md §4g): deterministic mangling of serialized
// trace records *before* they reach the TraceReader, driven by the same
// seeded FaultInjector that runs the control-plane fault programme — each
// ingest fault draws from its own independent stream, so enabling record
// corruption never perturbs digest-loss decisions (or vice versa).
//
// The mangler operates on the CSV wire form: records are lines, batches are
// fixed-size groups of lines. Faults model what a real collection path does
// to a feed: truncated writes (record cut mid-field), bit rot (one byte
// flipped), replayed batches (duplicated), out-of-order delivery (adjacent
// batches swapped), and offered-load bursts (records replicated inside
// FaultConfig burst windows). The header line is exempt — chaos attacks the
// records, not the container.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "switchsim/faults.hpp"

namespace iguard::io {

struct ChaosStats {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;  // after bursts/duplication/truncation-to-empty
  std::uint64_t truncated = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t burst_copies = 0;  // extra records injected by burst windows
  std::uint64_t batches = 0;
  std::uint64_t batches_duplicated = 0;
  std::uint64_t batches_reordered = 0;

  bool operator==(const ChaosStats&) const = default;
};

/// Apply `faults`' ingest-domain programme to a CSV trace byte stream and
/// return the mangled stream. Deterministic: a pure function of
/// (csv, faults.seed, batch_records). With every ingest fault off the
/// output is the input, byte for byte. Throws switchsim::ConfigError on an
/// invalid fault programme (e.g. a negative or non-finite burst
/// multiplier, which would be UB at the copy-count cast).
std::string mangle_csv(std::string_view csv, const switchsim::FaultConfig& faults,
                       std::size_t batch_records, ChaosStats& stats);

}  // namespace iguard::io
