#include "eval/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace iguard::eval {

double Confusion::accuracy() const {
  const std::size_t t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

Confusion confusion(std::span<const int> truth, std::span<const int> pred) {
  if (truth.size() != pred.size()) throw std::invalid_argument("confusion: size mismatch");
  Confusion c;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 1) {
      (pred[i] == 1 ? c.tp : c.fn) += 1;
    } else {
      (pred[i] == 1 ? c.fp : c.tn) += 1;
    }
  }
  return c;
}

double f1_for_class(const Confusion& c, int positive_class) {
  // For class 0, swap the roles so "positives" are the zeros.
  const double tp = static_cast<double>(positive_class == 1 ? c.tp : c.tn);
  const double fp = static_cast<double>(positive_class == 1 ? c.fp : c.fn);
  const double fn = static_cast<double>(positive_class == 1 ? c.fn : c.fp);
  const double denom = 2.0 * tp + fp + fn;
  return denom > 0.0 ? 2.0 * tp / denom : 0.0;
}

double macro_f1(std::span<const int> truth, std::span<const int> pred) {
  const Confusion c = confusion(truth, pred);
  return 0.5 * (f1_for_class(c, 0) + f1_for_class(c, 1));
}

double roc_auc(std::span<const int> truth, std::span<const double> score) {
  if (truth.size() != score.size()) throw std::invalid_argument("roc_auc: size mismatch");
  const std::size_t n = truth.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });

  double pos_rank_sum = 0.0;
  std::size_t pos = 0, neg = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && score[order[j]] == score[order[i]]) ++j;
    const double mid_rank = 0.5 * static_cast<double>(i + j + 1);  // 1-based mid-rank
    for (std::size_t k = i; k < j; ++k) {
      if (truth[order[k]] == 1) {
        pos_rank_sum += mid_rank;
        ++pos;
      } else {
        ++neg;
      }
    }
    i = j;
  }
  if (pos == 0 || neg == 0) return 0.5;
  const double u = pos_rank_sum - static_cast<double>(pos) * (static_cast<double>(pos) + 1.0) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double pr_auc(std::span<const int> truth, std::span<const double> score) {
  if (truth.size() != score.size()) throw std::invalid_argument("pr_auc: size mismatch");
  const std::size_t n = truth.size();
  const std::size_t total_pos =
      static_cast<std::size_t>(std::count(truth.begin(), truth.end(), 1));
  if (total_pos == 0) return 0.0;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] > score[b]; });

  // Average precision, processing ties as one block.
  double ap = 0.0;
  std::size_t tp = 0, seen = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    std::size_t block_pos = 0;
    while (j < n && score[order[j]] == score[order[i]]) {
      block_pos += static_cast<std::size_t>(truth[order[j]] == 1);
      ++j;
    }
    tp += block_pos;
    seen = j;
    const double precision = static_cast<double>(tp) / static_cast<double>(seen);
    ap += precision * static_cast<double>(block_pos) / static_cast<double>(total_pos);
    i = j;
  }
  return ap;
}

DetectionMetrics evaluate(std::span<const int> truth, std::span<const int> pred,
                          std::span<const double> score) {
  DetectionMetrics m;
  m.macro_f1 = macro_f1(truth, pred);
  m.roc_auc = roc_auc(truth, score);
  m.pr_auc = pr_auc(truth, score);
  return m;
}

double best_f1_threshold(std::span<const int> truth, std::span<const double> score) {
  if (truth.size() != score.size() || truth.empty()) {
    throw std::invalid_argument("best_f1_threshold: bad input");
  }
  const std::size_t n = truth.size();
  // Single sort + incremental confusion update: O(n log n), replacing a
  // sweep that re-scanned all n samples per candidate (O(n * distinct)).
  // The candidate values, their order, and the confusion integers at each
  // candidate are identical to the old sweep's, so f1 doubles — and the
  // returned threshold — are bit-identical.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] < score[b]; });

  // Candidates: below the minimum (everything positive), midpoints between
  // consecutive distinct scores, above the maximum (everything negative).
  // They are non-decreasing — even when FP rounding collapses a midpoint
  // onto an endpoint — which is what makes the single-pointer sweep valid.
  std::vector<double> cand;
  cand.reserve(n + 2);
  cand.push_back(score[order.front()] - 1.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double a = score[order[i]], b = score[order[i + 1]];
    if (a != b) cand.push_back(0.5 * (a + b));
  }
  cand.push_back(score[order.back()] + 1.0);

  // Start from "everything predicted positive"; the sweep pointer then
  // flips each sample to predicted-negative once its score is <= the
  // candidate — exactly the partition the old `score > thr` scan produced,
  // including the FP edge case where `min - 1.0 == min`.
  Confusion c;
  for (const int t : truth) (t == 1 ? c.tp : c.fp) += 1;
  std::size_t j = 0;  // samples with score <= current candidate
  double best_thr = cand.front();
  double best = -1.0;
  for (const double thr : cand) {
    while (j < n && score[order[j]] <= thr) {
      if (truth[order[j]] == 1) {
        --c.tp;
        ++c.fn;
      } else {
        --c.fp;
        ++c.tn;
      }
      ++j;
    }
    const double f1 = 0.5 * (f1_for_class(c, 0) + f1_for_class(c, 1));
    if (f1 > best) {
      best = f1;
      best_thr = thr;
    }
  }
  return best_thr;
}

DetectionMetrics evaluate_scores(std::span<const int> truth, std::span<const double> score,
                                 double thr) {
  std::vector<int> pred(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) pred[i] = score[i] > thr ? 1 : 0;
  return evaluate(truth, pred, score);
}

}  // namespace iguard::eval
