#include "ml/nn.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iguard::ml {

double apply_activation(Activation a, double z) {
  switch (a) {
    case Activation::kLinear:
      return z;
    case Activation::kRelu:
      return z > 0.0 ? z : 0.0;
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-z));
    case Activation::kTanh:
      return std::tanh(z);
  }
  return z;
}

double activation_grad_from_output(Activation a, double y) {
  switch (a) {
    case Activation::kLinear:
      return 1.0;
    case Activation::kRelu:
      return y > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid:
      return y * (1.0 - y);
    case Activation::kTanh:
      return 1.0 - y * y;
  }
  return 1.0;
}

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act, Rng& rng)
    : w_(out, in),
      b_(out, 0.0),
      act_(act),
      gw_(out, in),
      mw_(out, in),
      vw_(out, in),
      gb_(out, 0.0),
      mb_(out, 0.0),
      vb_(out, 0.0) {
  // Glorot-uniform initialisation keeps small nets trainable at lr ~1e-3.
  const double limit = std::sqrt(6.0 / static_cast<double>(in + out));
  for (double& v : w_.flat()) v = rng.uniform(-limit, limit);
}

void DenseLayer::forward(std::span<const double> x, std::vector<double>& y) {
  if (x.size() != in_dim()) throw std::invalid_argument("DenseLayer: bad input width");
  last_x_.assign(x.begin(), x.end());
  y.resize(out_dim());
  for (std::size_t o = 0; o < out_dim(); ++o) {
    y[o] = apply_activation(act_, dot(w_.row(o), x) + b_[o]);
  }
  last_y_ = y;
}

void DenseLayer::forward_const(std::span<const double> x, std::vector<double>& y) const {
  if (x.size() != in_dim()) throw std::invalid_argument("DenseLayer: bad input width");
  y.resize(out_dim());
  for (std::size_t o = 0; o < out_dim(); ++o) {
    y[o] = apply_activation(act_, dot(w_.row(o), x) + b_[o]);
  }
}

void DenseLayer::backward(std::span<const double> dy, std::vector<double>& dx) {
  dx.assign(in_dim(), 0.0);
  for (std::size_t o = 0; o < out_dim(); ++o) {
    const double dz = dy[o] * activation_grad_from_output(act_, last_y_[o]);
    gb_[o] += dz;
    auto gw_row = gw_.row(o);
    auto w_row = w_.row(o);
    for (std::size_t i = 0; i < in_dim(); ++i) {
      gw_row[i] += dz * last_x_[i];
      dx[i] += dz * w_row[i];
    }
  }
}

void DenseLayer::step(double lr, std::size_t batch, std::size_t t, double beta1,
                      double beta2, double eps) {
  const double inv = 1.0 / static_cast<double>(batch);
  const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(t));
  const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(t));
  auto g = gw_.flat();
  auto m = mw_.flat();
  auto v = vw_.flat();
  auto w = w_.flat();
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double grad = g[i] * inv;
    m[i] = beta1 * m[i] + (1.0 - beta1) * grad;
    v[i] = beta2 * v[i] + (1.0 - beta2) * grad * grad;
    w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
    g[i] = 0.0;
  }
  for (std::size_t o = 0; o < b_.size(); ++o) {
    const double grad = gb_[o] * inv;
    mb_[o] = beta1 * mb_[o] + (1.0 - beta1) * grad;
    vb_[o] = beta2 * vb_[o] + (1.0 - beta2) * grad * grad;
    b_[o] -= lr * (mb_[o] / bc1) / (std::sqrt(vb_[o] / bc2) + eps);
    gb_[o] = 0.0;
  }
}

Mlp::Mlp(std::span<const std::size_t> dims, std::span<const Activation> acts, Rng& rng) {
  if (dims.size() < 2 || acts.size() != dims.size() - 1) {
    throw std::invalid_argument("Mlp: dims/acts mismatch");
  }
  layers_.reserve(acts.size());
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    layers_.emplace_back(dims[l], dims[l + 1], acts[l], rng);
  }
  buf_.resize(layers_.size());
}

std::size_t Mlp::in_dim() const { return layers_.front().in_dim(); }
std::size_t Mlp::out_dim() const { return layers_.back().out_dim(); }

const std::vector<double>& Mlp::forward(std::span<const double> x) {
  std::span<const double> cur = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].forward(cur, buf_[l]);
    cur = buf_[l];
  }
  return buf_.back();
}

void Mlp::forward_const(std::span<const double> x, std::vector<double>& out,
                        std::vector<double>& scratch) const {
  std::vector<double>* cur = &out;
  std::vector<double>* nxt = &scratch;
  layers_.front().forward_const(x, *cur);
  for (std::size_t l = 1; l < layers_.size(); ++l) {
    layers_[l].forward_const(*cur, *nxt);
    std::swap(cur, nxt);
  }
  if (cur != &out) out.swap(*cur);
}

void Mlp::backward(std::span<const double> dout, std::vector<double>& dx) {
  std::vector<double> d(dout.begin(), dout.end());
  for (std::size_t l = layers_.size(); l-- > 0;) {
    layers_[l].backward(d, dx);
    d = dx;
  }
}

void Mlp::step(double lr, std::size_t batch) {
  ++adam_t_;
  for (auto& layer : layers_) layer.step(lr, batch, adam_t_);
}

double Mlp::train_batch(const Matrix& x, const Matrix& target,
                        std::span<const std::size_t> idx, double lr) {
  double loss = 0.0;
  std::vector<double> dout, dx;
  for (std::size_t s : idx) {
    const auto& y = forward(x.row(s));
    auto t = target.row(s);
    dout.resize(y.size());
    for (std::size_t j = 0; j < y.size(); ++j) {
      const double e = y[j] - t[j];
      loss += e * e;
      dout[j] = 2.0 * e / static_cast<double>(y.size());
    }
    backward(dout, dx);
  }
  step(lr, idx.size());
  return loss / static_cast<double>(idx.size() * out_dim());
}

double Mlp::fit(const Matrix& x, const Matrix& target, std::size_t epochs,
                std::size_t batch_size, double lr, Rng& rng) {
  if (x.rows() != target.rows()) throw std::invalid_argument("Mlp::fit: row mismatch");
  std::vector<std::size_t> order(x.rows());
  std::iota(order.begin(), order.end(), std::size_t{0});
  double last_epoch_loss = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    rng.shuffle(std::span<std::size_t>(order));
    double total = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += batch_size) {
      const std::size_t len = std::min(batch_size, order.size() - start);
      total += train_batch(x, target, {order.data() + start, len}, lr);
      ++batches;
    }
    last_epoch_loss = total / static_cast<double>(std::max<std::size_t>(batches, 1));
  }
  return last_epoch_loss;
}

}  // namespace iguard::ml
