// Blacklist exact-match table. The control plane (see faults.hpp) receives
// digests from the data plane whenever a flow's class is determined (13 B
// five-tuple + 1-bit label, App. B.2), installs a blacklist rule for
// malicious flows, and evicts old rules FIFO or LRU when the table is full
// (§3.3.2). LRU eviction is O(log n) via a stamp index — a sustained-DDoS
// blacklist churns one eviction per install, exactly the regime a per-install
// linear scan cannot afford.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <unordered_map>

#include "trafficgen/packet.hpp"

namespace iguard::switchsim {

enum class EvictionPolicy { kFifo, kLru };

class BlacklistTable {
 public:
  explicit BlacklistTable(std::size_t capacity, EvictionPolicy policy = EvictionPolicy::kFifo)
      : capacity_(capacity), policy_(policy) {}

  /// Bidirectional table key of a 5-tuple — exposed so the pipeline can
  /// hash a packet once and reuse the key for the blacklist lookup and the
  /// leak check.
  static std::uint64_t flow_key(const traffic::FiveTuple& ft) {
    return traffic::bihash(ft, 0xB1AC);
  }

  /// True if the 5-tuple (either direction) is blacklisted. LRU mode
  /// refreshes recency on hit.
  bool contains(const traffic::FiveTuple& ft) { return contains_key(key(ft)); }

  /// Same, keyed by a precomputed flow_key(ft).
  bool contains_key(std::uint64_t k);

  /// Install a rule; evicts the oldest/least-recently-used entry when full.
  /// Returns true when a new entry was inserted (false = duplicate; LRU
  /// refreshes recency, FIFO keeps the original install position).
  bool install(const traffic::FiveTuple& ft);

  /// Remove a rule (operator withdrawal / reconciliation). Returns true if
  /// the entry existed. FIFO mode leaves the stale key in the order queue;
  /// install() compacts it away lazily.
  bool erase(const traffic::FiveTuple& ft);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t evictions() const { return evictions_; }
  /// FIFO bookkeeping queue length (0 under LRU); exposed so tests can
  /// assert the queue stays bounded by the live entry count.
  std::size_t order_queue_size() const { return order_.size(); }

 private:
  std::uint64_t key(const traffic::FiveTuple& ft) const { return flow_key(ft); }
  void touch(std::uint64_t k);

  std::size_t capacity_;
  EvictionPolicy policy_;
  std::unordered_map<std::uint64_t, std::uint64_t> entries_;  // key -> stamp
  std::deque<std::uint64_t> order_;                           // FIFO install order
  std::map<std::uint64_t, std::uint64_t> by_stamp_;           // LRU: stamp -> key
  std::uint64_t clock_ = 0;
  std::size_t evictions_ = 0;
};

/// One digest message (data plane -> controller).
struct Digest {
  traffic::FiveTuple ft;
  int label = 0;

  /// Wire size: 13 B 5-tuple + 1 B carrying the 1-bit label (App. B.2).
  static constexpr std::size_t kBytes = 14;
};

}  // namespace iguard::switchsim
