// Whitelist rule representation. A rule is a conjunction of closed integer
// ranges, one per (quantised) feature field — i.e. an axis-aligned hypercube
// in feature space, exactly what a root-to-leaf path of an iTree denotes and
// what a match-action table can match with range or ternary entries.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace iguard::rules {

/// Closed integer interval [lo, hi]. Empty iff lo > hi.
struct FieldRange {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  bool contains(std::uint32_t v) const { return lo <= v && v <= hi; }
  bool empty() const { return lo > hi; }
  bool operator==(const FieldRange&) const = default;
};

struct RangeRule {
  std::vector<FieldRange> fields;
  int label = 0;       // 0 = benign/whitelist, 1 = malicious
  int priority = 0;    // lower value = matched first

  bool matches(std::span<const std::uint32_t> key) const {
    if (key.size() != fields.size()) return false;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!fields[i].contains(key[i])) return false;
    }
    return true;
  }

  bool operator==(const RangeRule&) const = default;
};

std::string to_string(const RangeRule& r);

/// True if the two rules' hypercubes can be merged into one hypercube:
/// identical on every field except one where they are adjacent or
/// overlapping (the purple-box merge of the paper's Fig. 3c).
bool mergeable(const RangeRule& a, const RangeRule& b, std::size_t* diff_field = nullptr);

/// Greedy pass merging adjacent same-label rules until fixpoint.
std::vector<RangeRule> merge_rules(std::vector<RangeRule> rules);

}  // namespace iguard::rules
