#include "switchsim/p4_emit.hpp"

#include "switchsim/resources.hpp"

#include <gtest/gtest.h>

namespace iguard::switchsim {
namespace {

// Minimal deployment: tiny vote whitelists with known rule counts.
class P4EmitTest : public ::testing::Test {
 protected:
  P4EmitTest() {
    ml::Matrix fake(2, 13);
    for (std::size_t j = 0; j < 13; ++j) fake(1, j) = 100.0;
    flq_.fit(fake);
    ml::Matrix fake_pl(2, 4);
    for (std::size_t j = 0; j < 4; ++j) fake_pl(1, j) = 100.0;
    plq_.fit(fake_pl);

    fl_.tree_count = 2;
    fl_.tables.emplace_back(std::vector<rules::RangeRule>{
        {std::vector<rules::FieldRange>(13, {0, 50}), 0, 0},
        {std::vector<rules::FieldRange>(13, {51, 99}), 0, 1}});
    fl_.tables.emplace_back(std::vector<rules::RangeRule>{
        {std::vector<rules::FieldRange>(13, {0, 99}), 0, 0}});
    pl_.tree_count = 1;
    pl_.tables.emplace_back(std::vector<rules::RangeRule>{
        {std::vector<rules::FieldRange>(4, {0, 10}), 0, 0}});

    model_.fl_tables = &fl_;
    model_.fl_quantizer = &flq_;
    model_.pl_tables = &pl_;
    model_.pl_quantizer = &plq_;
  }

  rules::Quantizer flq_{16}, plq_{16};
  core::VoteWhitelist fl_, pl_;
  DeployedModel model_;
};

TEST_F(P4EmitTest, ProgramContainsAllTables) {
  const std::string p4 = emit_p4_program(model_);
  EXPECT_NE(p4.find("fl_whitelist_tree0"), std::string::npos);
  EXPECT_NE(p4.find("fl_whitelist_tree1"), std::string::npos);
  EXPECT_NE(p4.find("pl_whitelist_tree0"), std::string::npos);
  EXPECT_NE(p4.find("table blacklist"), std::string::npos);
  EXPECT_NE(p4.find("#include <v1model.p4>"), std::string::npos);
}

TEST_F(P4EmitTest, RegistersMatchResourceModel) {
  // Nine packed register arrays, as DeploymentSpec::stateful_registers.
  const std::string p4 = emit_p4_program(model_);
  std::size_t regs = 0;
  for (std::size_t pos = p4.find("register<"); pos != std::string::npos;
       pos = p4.find("register<", pos + 1)) {
    ++regs;
  }
  EXPECT_EQ(regs, DeploymentSpec{}.stateful_registers);
}

TEST_F(P4EmitTest, TableSizesReflectRuleCounts) {
  const std::string p4 = emit_p4_program(model_);
  EXPECT_NE(p4.find("size = 2;"), std::string::npos);  // tree 0 has 2 rules
}

TEST_F(P4EmitTest, OptionsAreStamped) {
  P4EmitOptions o;
  o.packet_threshold_n = 24;
  o.idle_timeout_us = 5'000'000;
  const std::string p4 = emit_p4_program(model_, o);
  EXPECT_NE(p4.find("packet threshold n = 24"), std::string::npos);
  EXPECT_NE(p4.find("5000000 us"), std::string::npos);
}

TEST_F(P4EmitTest, EntriesOnePerRuleWithRanges) {
  const std::string e = emit_table_entries(model_);
  std::size_t lines = 0;
  for (char c : e) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4u);  // 2 + 1 FL rules + 1 PL rule
  EXPECT_NE(e.find("table_add fl_whitelist_tree0 vote_fl 0->50"), std::string::npos);
  EXPECT_NE(e.find("table_add pl_whitelist_tree0 vote_pl 0->10"), std::string::npos);
}

TEST_F(P4EmitTest, NoPlModelIsFine) {
  DeployedModel no_pl = model_;
  no_pl.pl_tables = nullptr;
  no_pl.pl_quantizer = nullptr;
  const std::string p4 = emit_p4_program(no_pl);
  EXPECT_EQ(p4.find("pl_whitelist_tree0"), std::string::npos);
  EXPECT_NE(p4.find("fl_whitelist_tree0"), std::string::npos);
}

}  // namespace
}  // namespace iguard::switchsim
