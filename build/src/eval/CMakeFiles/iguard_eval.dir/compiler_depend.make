# Empty compiler generated dependencies file for iguard_eval.
# This may be replaced when dependencies are built.
