#include "io/chaos.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace iguard::io {

std::string mangle_csv(std::string_view csv, const switchsim::FaultConfig& faults,
                       std::size_t batch_records, ChaosStats& stats) {
  if (const std::string err = switchsim::validate_config(faults); !err.empty()) {
    const std::size_t colon = err.find(':');
    throw switchsim::ConfigError("FaultConfig", err.substr(0, colon),
                                 colon == std::string::npos ? err : err.substr(colon + 2));
  }
  if (!faults.ingest_any_enabled()) return std::string(csv);
  if (batch_records == 0) batch_records = 1;
  switchsim::FaultInjector inj(faults);

  // Split off the header (exempt) and collect data records.
  std::string_view header;
  std::size_t pos = 0;
  {
    std::size_t eol = csv.find('\n');
    header = csv.substr(0, eol == std::string_view::npos ? csv.size() : eol);
    pos = eol == std::string_view::npos ? csv.size() : eol + 1;
  }
  std::vector<std::string> records;
  while (pos < csv.size()) {
    std::size_t eol = csv.find('\n', pos);
    if (eol == std::string_view::npos) eol = csv.size();
    if (eol > pos) records.emplace_back(csv.substr(pos, eol - pos));
    pos = eol + 1;
  }
  stats.records_in += records.size();

  // Stage 1 — per-record faults. Burst windows replicate the record
  // floor(multiplier)x; every emitted copy then rolls truncation (cut to a
  // non-empty prefix, so the mangled record still reaches the reader as one
  // offered row) and corruption (one byte flipped, never to itself).
  std::vector<std::string> mangled;
  mangled.reserve(records.size());
  for (const auto& rec : records) {
    const double ts = std::strtod(rec.c_str(), nullptr);  // lenient: chaos only
    // validate_config bounds each window's multiplier, but overlapping
    // windows multiply; clamp the product so the uint64 cast below stays
    // defined no matter how windows stack.
    const double mult =
        std::min(inj.burst_multiplier_at(ts), switchsim::kMaxBurstMultiplier);
    auto copies = static_cast<std::uint64_t>(mult);
    if (copies < 1) copies = 1;
    stats.burst_copies += copies - 1;
    for (std::uint64_t c = 0; c < copies; ++c) {
      std::string r = rec;
      if (r.size() >= 2 && inj.truncate_record()) {
        r.resize(1 + inj.chaos_value() % (r.size() - 1));
        ++stats.truncated;
      }
      if (!r.empty() && inj.corrupt_record()) {
        const std::size_t at = inj.chaos_value() % r.size();
        const auto flip = static_cast<char>(1 + inj.chaos_value() % 255);  // never 0
        char garbled = static_cast<char>(r[at] ^ flip);
        // Never inject a record separator: a '\n' would split one offered
        // row into two and break the chaos.records_out == ingest.offered
        // chain identity the conservation audit relies on.
        if (garbled == '\n' || garbled == '\r') {
          garbled = r[at] == '#' ? '$' : '#';
        }
        r[at] = garbled;
        ++stats.corrupted;
      }
      mangled.push_back(std::move(r));
    }
  }

  // Stage 2 — batch faults over fixed-size record groups: adjacent swaps
  // (out-of-order delivery) then duplication (replayed delivery).
  std::vector<std::vector<std::string>> batches;
  for (std::size_t i = 0; i < mangled.size(); i += batch_records) {
    const std::size_t end = std::min(mangled.size(), i + batch_records);
    batches.emplace_back(std::make_move_iterator(mangled.begin() + static_cast<std::ptrdiff_t>(i)),
                         std::make_move_iterator(mangled.begin() + static_cast<std::ptrdiff_t>(end)));
  }
  stats.batches += batches.size();
  for (std::size_t i = 0; i + 1 < batches.size(); ++i) {
    if (inj.reorder_batch()) {
      std::swap(batches[i], batches[i + 1]);
      ++stats.batches_reordered;
      ++i;  // a swapped pair is settled; don't re-roll its second half
    }
  }

  std::string out;
  out.reserve(csv.size() + csv.size() / 4);
  out.append(header);
  out.push_back('\n');
  const auto emit = [&](const std::vector<std::string>& batch) {
    for (const auto& r : batch) {
      out.append(r);
      out.push_back('\n');
      ++stats.records_out;
    }
  };
  for (const auto& batch : batches) {
    emit(batch);
    if (inj.duplicate_batch()) {
      emit(batch);
      ++stats.batches_duplicated;
    }
  }
  return out;
}

}  // namespace iguard::io
