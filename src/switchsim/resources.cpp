#include "switchsim/resources.hpp"

#include <algorithm>
#include <cmath>

#include "rules/ternary.hpp"

namespace iguard::switchsim {

namespace {
// TCAM bits for one rule set. Multi-field range rules are costed the way a
// Tofino compiler realises them: each range field uses the `range` match
// kind (nibble/DIRPE-style encoding, ~2x the field width in TCAM bits) and
// the whole rule occupies ONE entry whose key spans ceil(key_bits/44)
// TCAM words. (Naive per-field prefix cross-product expansion — available
// as rules::tcam_entries() — is exponential in the field count and is not
// what hardware does for multi-field range keys.)
double tcam_bits_for(const core::VoteWhitelist* wl, unsigned field_bits,
                     const TofinoBudget& b, std::size_t* entries_out) {
  if (wl == nullptr) return 0.0;
  const std::size_t entries = wl->total_rules();
  if (entries == 0) return 0.0;
  if (entries_out) *entries_out += entries;
  std::size_t fields = 0;
  for (const auto& t : wl->tables) {
    if (!t.rules().empty()) {
      fields = t.rules()[0].fields.size();
      break;
    }
  }
  const std::size_t key_bits = fields * 2 * field_bits;  // range-encoded width
  const std::size_t words =
      (key_bits + b.tcam_bits_per_entry - 1) / b.tcam_bits_per_entry;  // ceil
  return static_cast<double>(entries * words * b.tcam_bits_per_entry);
}
}  // namespace

ResourceUsage estimate_resources(const DeploymentSpec& spec, const TofinoBudget& budget) {
  ResourceUsage u;

  // --- TCAM: whitelist rule sets -------------------------------------------
  std::size_t entries = 0;
  double tcam_bits = 0.0;
  tcam_bits += tcam_bits_for(spec.fl_rules, spec.fl_field_bits, budget, &entries);
  tcam_bits += tcam_bits_for(spec.pl_rules, spec.pl_field_bits, budget, &entries);
  u.tcam_entries = entries;
  u.tcam_frac = tcam_bits / budget.tcam_bits_total();

  // --- SRAM: flow state + blacklist + table overhead ------------------------
  // Per flow slot: 64-bit signature, 11 feature/metadata registers of 32
  // bits, two 48-bit timestamps => ~512 bits; two hash tables.
  const double flow_bits = 2.0 * static_cast<double>(spec.flow_slots) * 512.0;
  // Blacklist exact-match entry: 104-bit 5-tuple key + action + overhead
  // (~1.4x for cuckoo/hash-way slack), padded to SRAM words.
  const double blacklist_bits = static_cast<double>(spec.blacklist_capacity) * 1.4 * 128.0;
  // Match-table overheads (action data, selectors) — small constant.
  const double overhead_bits = 64.0 * 1024.0;
  u.sram_bits = flow_bits + blacklist_bits + overhead_bits;
  u.sram_frac = u.sram_bits / budget.sram_bits_total();

  // --- sALU / VLIW / stages --------------------------------------------------
  // One stateful ALU per register array the per-packet path updates; the
  // double hash tables mirror the same registers, sharing each sALU.
  const double salus = spec.flow_slots > 0 ? static_cast<double>(spec.stateful_registers) : 0.0;
  u.salu_frac = salus / budget.salus_total();
  u.vliw_frac = static_cast<double>(spec.vliw_slots) / budget.vliw_total();
  u.stages = std::min(spec.pipeline_stages, budget.stages);
  return u;
}

}  // namespace iguard::switchsim
