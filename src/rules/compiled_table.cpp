#include "rules/compiled_table.hpp"

#include <algorithm>
#include <bit>

namespace iguard::rules {

namespace {

constexpr std::uint64_t kDomainEnd = 1ull << 32;  // one past the largest key

/// Widest key the AND sweep handles on the stack; real tables are 4 (PL) or
/// 13 (FL) fields wide. Wider rules fall back to the linear scan.
constexpr std::size_t kMaxFields = 64;

}  // namespace

void CompiledRuleTable::compile(const std::vector<RangeRule>& sorted_rules) {
  rules_ = sorted_rules;
  groups_.clear();

  // Group rule indices by width, preserving priority order within a group.
  for (std::size_t ri = 0; ri < rules_.size(); ++ri) {
    const std::size_t w = rules_[ri].fields.size();
    auto it = std::find_if(groups_.begin(), groups_.end(),
                           [w](const WidthGroup& g) { return g.width == w; });
    if (it == groups_.end()) {
      groups_.push_back(WidthGroup{w, 0, {}, {}});
      it = std::prev(groups_.end());
    }
    it->to_global.push_back(static_cast<std::uint32_t>(ri));
  }
  std::sort(groups_.begin(), groups_.end(),
            [](const WidthGroup& a, const WidthGroup& b) { return a.width < b.width; });

  for (auto& g : groups_) {
    const std::size_t n = g.to_global.size();
    g.words = (n + 63) / 64;
    g.fields.resize(g.width);
    if (g.width > kMaxFields) continue;  // match_index falls back to the scan
    for (std::size_t f = 0; f < g.width; ++f) {
      FieldIndex& fi = g.fields[f];
      // Breakpoints: every rule's lo and hi+1 (the first value past the
      // range). Between consecutive breakpoints the covering set is constant.
      fi.bounds.clear();
      fi.bounds.push_back(0);
      for (const std::uint32_t gi : g.to_global) {
        const FieldRange& r = rules_[gi].fields[f];
        if (r.empty()) continue;  // matches nothing: never sets a bit
        fi.bounds.push_back(r.lo);
        fi.bounds.push_back(static_cast<std::uint64_t>(r.hi) + 1);
      }
      std::sort(fi.bounds.begin(), fi.bounds.end());
      fi.bounds.erase(std::unique(fi.bounds.begin(), fi.bounds.end()), fi.bounds.end());
      if (fi.bounds.back() >= kDomainEnd) fi.bounds.pop_back();  // hi = 2^32-1

      fi.masks.assign(fi.bounds.size() * g.words, 0);
      for (std::size_t li = 0; li < n; ++li) {
        const FieldRange& r = rules_[g.to_global[li]].fields[f];
        if (r.empty()) continue;
        // Intervals are either fully inside or fully outside [lo, hi]; the
        // covered ones start at bound == lo and end before the bound > hi.
        const auto first = std::lower_bound(fi.bounds.begin(), fi.bounds.end(),
                                            static_cast<std::uint64_t>(r.lo));
        const auto last = std::upper_bound(first, fi.bounds.end(),
                                           static_cast<std::uint64_t>(r.hi));
        const std::uint64_t bit = 1ull << (li % 64);
        const std::size_t word = li / 64;
        for (auto it = first; it != last; ++it) {
          const std::size_t iv = static_cast<std::size_t>(it - fi.bounds.begin());
          fi.masks[iv * g.words + word] |= bit;
        }
      }
    }
  }
}

int CompiledRuleTable::match_index(std::span<const std::uint32_t> key) const {
  for (const auto& g : groups_) {
    if (g.width != key.size()) continue;
    if (g.width == 0) return static_cast<int>(g.to_global[0]);  // empty conjunction
    if (g.width > kMaxFields) {
      for (const std::uint32_t gi : g.to_global) {
        if (rules_[gi].matches(key)) return static_cast<int>(gi);
      }
      return -1;
    }
    // One binary search per field resolves the interval whose mask row
    // describes exactly the rules covering key[f] on that field.
    const std::uint64_t* rows[kMaxFields];
    for (std::size_t f = 0; f < g.width; ++f) {
      const FieldIndex& fi = g.fields[f];
      const auto it = std::upper_bound(fi.bounds.begin(), fi.bounds.end(),
                                       static_cast<std::uint64_t>(key[f]));
      const std::size_t iv = static_cast<std::size_t>(it - fi.bounds.begin()) - 1;
      rows[f] = fi.masks.data() + iv * g.words;
    }
    // Word-wise intersection, low rule indices first: the first set bit is
    // the highest-priority match (the TCAM priority encoder).
    for (std::size_t w = 0; w < g.words; ++w) {
      std::uint64_t acc = rows[0][w];
      for (std::size_t f = 1; f < g.width && acc != 0; ++f) acc &= rows[f][w];
      if (acc != 0) {
        const std::size_t local = w * 64 + static_cast<std::size_t>(std::countr_zero(acc));
        return static_cast<int>(g.to_global[local]);
      }
    }
    return -1;
  }
  return -1;
}

}  // namespace iguard::rules
