#include "obs/metrics.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace iguard::obs {

namespace {

/// Fixed-precision scalar formatting shared by JSON and CSV: integral values
/// (counters, bucket counts) print without a fraction, everything else as
/// %.9g — identical doubles always render to identical bytes.
std::string format_value(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

constexpr double kLatencyBoundsNs[] = {16.0,     32.0,     64.0,      128.0,     256.0,
                                       512.0,    1024.0,   2048.0,    4096.0,    8192.0,
                                       16384.0,  32768.0,  65536.0,   131072.0,  262144.0,
                                       1048576.0, 4194304.0, 16777216.0};

constexpr double kInstallLatencyBoundsS[] = {0.0,   1e-4, 5e-4, 1e-3, 5e-3,
                                             1e-2,  5e-2, 1e-1, 5e-1, 1.0};

}  // namespace

std::span<const double> default_latency_bounds_ns() { return kLatencyBoundsNs; }
std::span<const double> default_install_latency_bounds_s() { return kInstallLatencyBoundsS; }

Counter Registry::counter(std::string_view name) {
  if (!enabled()) return Counter{};
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& c : counters_)
    if (c->name == name) return Counter{c.get()};
  counters_.push_back(std::make_unique<detail::CounterData>());
  counters_.back()->name = std::string(name);
  return Counter{counters_.back().get()};
}

Gauge Registry::gauge(std::string_view name) {
  if (!enabled()) return Gauge{};
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& g : gauges_)
    if (g->name == name) return Gauge{g.get()};
  gauges_.push_back(std::make_unique<detail::GaugeData>());
  gauges_.back()->name = std::string(name);
  return Gauge{gauges_.back().get()};
}

Histogram Registry::histogram(std::string_view name, std::span<const double> bounds) {
  if (!enabled()) return Histogram{};
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& h : histograms_)
    if (h->name == name) return Histogram{h.get()};
  auto h = std::make_unique<detail::HistogramData>();
  h->name = std::string(name);
  h->bounds.assign(bounds.begin(), bounds.end());
  h->buckets = std::vector<std::atomic<std::uint64_t>>(h->bounds.size() + 1);
  histograms_.push_back(std::move(h));
  return Histogram{histograms_.back().get()};
}

Series Registry::series(std::string_view name, std::size_t capacity, std::uint64_t every_n) {
  if (!enabled()) return Series{};
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : series_)
    if (s->name == name) return Series{s.get()};
  auto s = std::make_unique<detail::SeriesData>();
  s->name = std::string(name);
  s->every_n = every_n == 0 ? 1 : every_n;
  // Sized construction, not resize(): the atomic-bearing slots are neither
  // copyable nor movable, and the capacity never changes afterwards.
  s->samples = std::vector<detail::SeriesData::Slot>(capacity);
  series_.push_back(std::move(s));
  return Series{series_.back().get()};
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& c : counters_) {
    out.scalars[c->name] = static_cast<double>(c->value.load(std::memory_order_relaxed));
  }
  for (const auto& g : gauges_) {
    out.scalars[g->name] = g->value.load(std::memory_order_relaxed);
  }
  for (const auto& h : histograms_) {
    const std::uint64_t n = h->count.load(std::memory_order_relaxed);
    out.scalars[h->name + ".count"] = static_cast<double>(n);
    out.scalars[h->name + ".sum"] = h->sum.load(std::memory_order_relaxed);
    out.scalars[h->name + ".min"] = n > 0 ? h->min.load(std::memory_order_relaxed) : 0.0;
    out.scalars[h->name + ".max"] = n > 0 ? h->max.load(std::memory_order_relaxed) : 0.0;
    for (std::size_t i = 0; i < h->buckets.size(); ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), ".b%02zu", i);
      out.scalars[h->name + key] =
          static_cast<double>(h->buckets[i].load(std::memory_order_relaxed));
    }
  }
  for (const auto& s : series_) {
    const std::uint64_t w = s->write_idx.load(std::memory_order_relaxed);
    const std::uint64_t n = w < s->samples.size() ? w : s->samples.size();
    out.scalars[s->name + ".events"] =
        static_cast<double>(s->events.load(std::memory_order_relaxed));
    out.scalars[s->name + ".dropped"] =
        static_cast<double>(s->dropped.load(std::memory_order_relaxed));
    auto& rows = out.series[s->name];
    rows.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      // Acquire pairs with the release publish in observe(): a zero event
      // index means the slot was reserved but not yet fully written — skip
      // it rather than tear-read a half-stored sample.
      const std::uint64_t e = s->samples[i].event.load(std::memory_order_acquire);
      if (e == 0) continue;
      rows.emplace_back(e, s->samples[i].value.load(std::memory_order_relaxed));
    }
  }
  return out;
}

MetricsSnapshot diff(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [k, v] : after.scalars) {
    const auto it = before.scalars.find(k);
    out.scalars[k] = it == before.scalars.end() ? v : v - it->second;
  }
  out.series = after.series;
  return out;
}

MetricsSnapshot without_prefixes(const MetricsSnapshot& s,
                                 std::span<const std::string_view> prefixes) {
  const auto dropped = [&](const std::string& key) {
    for (const std::string_view p : prefixes) {
      if (key.size() >= p.size() && key.compare(0, p.size(), p) == 0) return true;
    }
    return false;
  };
  MetricsSnapshot out;
  for (const auto& [k, v] : s.scalars) {
    if (!dropped(k)) out.scalars.emplace(k, v);
  }
  for (const auto& [k, rows] : s.series) {
    if (!dropped(k)) out.series.emplace(k, rows);
  }
  return out;
}

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream os;
  os << "{\n  \"scalars\": {";
  bool first = true;
  for (const auto& [k, v] : s.scalars) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(k) << "\": " << format_value(v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"series\": {";
  first = true;
  for (const auto& [k, rows] : s.series) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(k) << "\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "[" << rows[i].first << ", "
         << format_value(rows[i].second) << "]";
    }
    os << "]";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string to_csv(const MetricsSnapshot& s) {
  std::ostringstream os;
  os << "kind,key,index,value\n";
  for (const auto& [k, v] : s.scalars) {
    os << "scalar," << k << ",," << format_value(v) << "\n";
  }
  for (const auto& [k, rows] : s.series) {
    for (const auto& [idx, v] : rows) {
      os << "series," << k << "," << idx << "," << format_value(v) << "\n";
    }
  }
  return os.str();
}

namespace {

/// "pipeline.shard0.path.red" -> "iguard_pipeline_shard0_path_red". The
/// prefix keeps names starting with a letter; mapping every character the
/// exposition format forbids to '_' is lossy ("a.b" and "a_b" collide) but
/// registry keys only ever use [a-z0-9._], so no instrument collides.
std::string prometheus_name(const std::string& key) {
  std::string out;
  out.reserve(key.size() + 7);
  out += "iguard_";
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& s) {
  std::ostringstream os;
  for (const auto& [k, v] : s.scalars) {
    const std::string name = prometheus_name(k);
    os << "# TYPE " << name << " untyped\n" << name << " " << format_value(v) << "\n";
  }
  for (const auto& [k, rows] : s.series) {
    const std::string name = prometheus_name(k);
    os << "# TYPE " << name << " untyped\n";
    for (const auto& [idx, v] : rows) {
      os << name << "{event=\"" << idx << "\"} " << format_value(v) << "\n";
    }
  }
  return os.str();
}

ScopeTimerNs::ScopeTimerNs(Histogram h) : h_(h) {
  if (h_.active()) {
    t0_ = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
  }
}

ScopeTimerNs::~ScopeTimerNs() {
  if (!h_.active()) return;
  const auto now = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  h_.record(std::chrono::duration<double, std::nano>(
                std::chrono::steady_clock::duration(
                    static_cast<std::chrono::steady_clock::rep>(now - t0_)))
                .count());
}

}  // namespace iguard::obs
