// Sharded parallel trace replay — the software twin of Tofino's independent
// pipes. The trace is partitioned by a bidirectional hash of the canonical
// 5-tuple, so both directions of a connection (and every packet of a flow)
// land in the same shard; each shard then runs its own complete Pipeline
// (FlowStore, blacklist shard, controller) over its sub-trace on the
// ml/parallel.hpp thread pool. Because flows never cross shards, per-flow
// state is exact, and because each shard's replay is sequential and the
// merge order is fixed by shard index, the merged SimStats are bit-identical
// at any thread count. Note the K-shard *semantics* differ from a single
// K-times-larger pipeline exactly the way K hardware pipes differ from one:
// hash collisions, blacklist evictions, and channel backpressure are per
// shard. For a fixed K the result is deterministic; tests assert it equals
// the sum of the K per-shard pipelines run sequentially.
#pragma once

#include <cstdint>
#include <vector>

#include "switchsim/pipeline.hpp"

namespace iguard::switchsim {

struct ReplayConfig {
  std::size_t shards = 1;
  /// Worker threads for the shard loop; 0 = one per shard (capped at the
  /// hardware concurrency). The result never depends on this value.
  std::size_t num_threads = 0;
  /// Seed of the shard-partition hash. Independent of the FlowStore /
  /// blacklist seeds so sharding never correlates with slot placement.
  std::uint64_t shard_seed = 0x51A2D0ull;
  /// Capture every digest at the channel mouth into
  /// ShardedReplayResult::digests (time-ordered across shards). The fleet
  /// simulator feeds this stream to its central controller. Capturing does
  /// not perturb the replay: the tap records before any fault decision.
  bool capture_digests = false;
};

/// Empty string when well-formed, otherwise the first violated invariant
/// (zero shards, zero partition seed space — shards must be >= 1). Checked
/// (throwing ConfigError) by replay_sharded and shard_trace.
std::string validate_config(const ReplayConfig& cfg);

/// Shard owning a 5-tuple. Direction-invariant: both directions of a
/// connection map to the same shard (bihash is order-independent).
std::size_t shard_of(const traffic::FiveTuple& ft, std::size_t shards,
                     std::uint64_t seed = ReplayConfig{}.shard_seed);

/// Partition a trace into `cfg.shards` flow-disjoint sub-traces, preserving
/// packet order within each shard.
std::vector<traffic::Trace> shard_trace(const traffic::Trace& trace, const ReplayConfig& cfg);

/// Field-wise sum of per-shard stats. pred/truth are concatenated in shard
/// order here; replay_sharded instead re-interleaves them into original
/// trace order (see its doc).
SimStats merge_stats(const std::vector<SimStats>& parts);

struct ShardedReplayResult {
  /// Merged stats. Counter fields are per-shard sums; when the pipeline
  /// records labels, pred/truth are re-interleaved into the original trace's
  /// packet order so downstream per-packet metrics are shard-agnostic.
  SimStats stats;
  std::vector<SimStats> per_shard;  // shard-indexed
  /// Channel-mouth digest stream, merged across shards into nondecreasing
  /// timestamp order (ties resolve by shard index, so the merge is
  /// deterministic). Populated only when ReplayConfig::capture_digests.
  std::vector<TimedDigest> digests;
};

/// Replay `trace` through `cfg.shards` independent pipelines in parallel.
/// Bit-identical for a fixed shard count regardless of num_threads.
ShardedReplayResult replay_sharded(const traffic::Trace& trace, const PipelineConfig& cfg,
                                   const DeployedModel& model, const ReplayConfig& rcfg = {});

}  // namespace iguard::switchsim
