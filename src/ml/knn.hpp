// k-nearest-neighbour anomaly detector (Fig. 10 candidate). Score = mean
// standardised distance to the k nearest benign training samples; far from
// all benign mass => anomalous. Training data is capped by reservoir-style
// subsampling so inference stays O(cap * m) per query.
#pragma once

#include <cstddef>

#include "ml/detector.hpp"
#include "ml/scaler.hpp"

namespace iguard::ml {

struct KnnDetectorConfig {
  std::size_t k = 5;
  std::size_t max_reference = 2000;  // subsample cap for the reference set
  double threshold_quantile = 0.98;
};

class KnnDetector : public AnomalyDetector {
 public:
  explicit KnnDetector(KnnDetectorConfig cfg = {}) : cfg_(cfg) {}

  void fit(const Matrix& benign, Rng& rng) override;
  double score(std::span<const double> x) override;
  double threshold() const override { return threshold_; }
  void set_threshold(double t) override { threshold_ = t; }
  std::string name() const override { return "knn"; }

  std::size_t reference_size() const { return ref_.rows(); }

 private:
  KnnDetectorConfig cfg_;
  StandardScaler scaler_;
  Matrix ref_;  // standardised reference set
  double threshold_ = 0.0;
  std::vector<double> z_, dists_;
};

}  // namespace iguard::ml
