// Fleet-scale deployment simulator (DESIGN.md §4f; ROADMAP item 3). The
// paper runs one Tofino; production is N switches under one control plane.
// Each simulated device runs the existing sharded pipeline (replay.hpp)
// over its tenant partition of the trace — flows never cross devices, so
// per-flow state stays exact and the data-plane phase parallelises freely —
// while a central FleetController consumes the merged channel-mouth digest
// stream on the event clock and turns it into fleet-wide rule installs:
// deduped (one intent per flow key), batched, and broadcast to every
// device's bounded install queue.
//
// Robustness model — each device is an independent failure domain:
//   * link partitions: the device is unreachable from the fleet controller
//     for a window; its digests are lost and installs addressed to it are
//     deferred (served stale, tracked by a staleness gauge — never blocking
//     the rest of the fleet);
//   * local controller crashes: the device's own control agent restarts
//     (faults.hpp crash windows, generated per device from an independent
//     SplitMix64 stream); the fleet still hears the data-plane digests
//     (digest export is an ASIC function) but cannot program tables;
//   * install faults: per-device install latency, failure injection with
//     capped exponential backoff then dead-letter, bounded queues whose
//     overflow is backpressure (counted, dead-lettered into the missed set)
//     rather than an unbounded buffer.
// Recovery is deterministic: when a device's dark window ends, the fleet
// controller re-syncs it with one coalesced catch-up pass over the rules it
// missed (exempt from failure injection, like the local recovery sweep).
//
// Determinism contract: with N=1 and fleet faults off, replay_fleet is
// byte-identical to replay_sharded (same stats, same obs non-"timing."
// keys); with faults on, the result is a pure function of (trace, config,
// seeds) at any worker thread count — every fleet decision happens on the
// event clock over the merged digest stream, whose order is fixed by
// (timestamp, device, shard).
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "switchsim/replay.hpp"

namespace iguard::switchsim {

/// One interval [start_s, end_s()) during which a device is unreachable
/// (link partition) or its control agent is down (local crash).
struct LinkWindow {
  double start_s = 0.0;
  double duration_s = 0.0;

  double end_s() const { return start_s + duration_s; }
};

/// Deterministic window schedule: at every check_interval_s step of the
/// trace horizon one Bernoulli(rate) draw decides whether a window of
/// duration_s opens there. The number of draws is fixed by the horizon, so
/// changing an outcome never shifts later draws.
std::vector<LinkWindow> generate_fault_windows(std::uint64_t seed, double rate,
                                               double duration_s, double check_interval_s,
                                               double horizon_s);

/// Sorted, overlap-merged window schedule (adjacent windows coalesce, so
/// up_after never lands inside another window).
class DarkSchedule {
 public:
  DarkSchedule() = default;
  explicit DarkSchedule(std::vector<LinkWindow> windows);

  bool down_at(double ts_s) const;
  /// Earliest time >= ts_s outside every window (end of the containing
  /// window; windows are merged, so one lookup suffices).
  double up_after(double ts_s) const;
  const std::vector<LinkWindow>& windows() const { return windows_; }

 private:
  std::vector<LinkWindow> windows_;  // disjoint, sorted by start_s
};

/// Per-device fault programme. Every stream is derived from (seed, device),
/// so devices fail independently and enabling one device's faults never
/// perturbs another's draw sequence. Rates apply uniformly across the
/// fleet; the seeds differ per device.
struct FleetFaultConfig {
  std::uint64_t seed = 0xF1EE70ull;
  // Local control-plane faults, applied to each device's own Controller
  // (faults.hpp) with a device-derived seed.
  double digest_loss_rate = 0.0;
  double digest_delay_rate = 0.0;
  double digest_delay_s = 0.0;
  double install_failure_rate = 0.0;  // local controller installs
  /// Local controller crash windows: P(window opens) per check interval.
  double crash_rate = 0.0;
  double crash_duration_s = 0.0;
  /// Link partitions (device unreachable from the fleet controller).
  double partition_rate = 0.0;
  double partition_duration_s = 0.0;
  double check_interval_s = 1.0;

  bool any_enabled() const {
    return digest_loss_rate > 0.0 || digest_delay_rate > 0.0 ||
           install_failure_rate > 0.0 || (crash_rate > 0.0 && crash_duration_s > 0.0) ||
           (partition_rate > 0.0 && partition_duration_s > 0.0);
  }
};

/// Central-controller behaviour knobs. Defaults install each digest
/// immediately (batch of 1, no latency, unbounded queues, no faults) so a
/// default-constructed fleet adds no control-plane behaviour of its own.
struct FleetControllerConfig {
  /// Install intents accumulated before a flush (1 = per-digest installs).
  std::size_t batch_size = 1;
  /// Also flush when this much event time passed since the last flush
  /// (0 = size-only batching).
  double batch_interval_s = 0.0;
  /// Flush -> applied-on-device latency (event clock).
  double install_latency_s = 0.0;
  /// Per-install failure probability at the device boundary, drawn from a
  /// per-device stream; failures retry with capped exponential backoff.
  double install_failure_rate = 0.0;
  std::size_t max_install_retries = 5;
  double retry_backoff_s = 0.001;
  double retry_backoff_cap_s = 0.100;
  /// In-flight installs per device; exceeding it is backpressure — the op
  /// is dropped, dead-lettered into the device's missed set, and re-synced
  /// at the next rejoin (or left to the final flush). 0 = unbounded.
  std::size_t install_queue_capacity = 0;
  /// Install every rule on every device (tenant isolation does not limit
  /// where an attacker shows up next); false = source device only.
  bool broadcast = true;
  /// A device counts as degraded while dark or while its install queue
  /// exceeds this many in-flight ops.
  std::size_t degraded_backlog_threshold = 64;
  /// Observability cadence: fleet backlog / devices-degraded are sampled
  /// every N digests (event count, deterministic).
  std::size_t sample_every = 8;
  std::size_t sample_capacity = 4096;
};

/// How the trace is split across devices.
enum class TenantPartition {
  kFlowHash,   // direction-invariant bihash of the canonical 5-tuple
  kSrcSubnet,  // canonical lower endpoint's /16 — co-locates subnets
};

struct FleetConfig {
  std::size_t devices = 1;
  TenantPartition partition = TenantPartition::kFlowHash;
  /// Seed of the tenant-partition hash; independent of shard/slot seeds.
  std::uint64_t tenant_seed = 0x7E4A47ull;
  /// Worker threads for the device loop (each device then runs its own
  /// sharded replay per `replay`); 0 = one per device, capped at hardware
  /// concurrency. The result never depends on this value.
  std::size_t num_threads = 0;
  /// Per-device sharding of the data-plane replay.
  ReplayConfig replay{};
  FleetFaultConfig faults{};
  FleetControllerConfig control{};
};

/// Empty string when well-formed, otherwise the first violated invariant
/// (zero devices, NaN/out-of-range rates, negative durations/latencies,
/// inverted backoff, zero batch size). Checked (throwing ConfigError) by
/// replay_fleet and FleetController's constructor.
std::string validate_config(const FleetFaultConfig& cfg);
std::string validate_config(const FleetControllerConfig& cfg);
std::string validate_config(const FleetConfig& cfg);

/// Fleet-controller accounting for one device (the control-plane half of
/// its failure domain; the data-plane half lives in its SimStats.faults).
struct DeviceFleetStats {
  std::size_t digests_lost_dark = 0;    // emitted while the link was partitioned
  std::size_t installs_enqueued = 0;    // ops admitted to the install queue
  std::size_t installs_applied = 0;     // ops resolved successfully
  std::size_t install_failures = 0;     // failed attempts (pre-retry)
  std::size_t install_retries = 0;      // attempts re-scheduled
  std::size_t dead_letters = 0;         // abandoned after max retries
  std::size_t backpressure_drops = 0;   // queue full at flush time
  std::size_t deferred_while_dark = 0;  // ops parked until the window closed
  std::size_t catchup_installs = 0;     // coalesced re-sync installs on rejoin
  std::size_t partitions = 0;           // link windows in the schedule
  std::size_t crash_windows = 0;        // local crash windows in the schedule
  std::size_t queue_hwm = 0;            // in-flight install high-water mark
  std::size_t rules_resident = 0;       // distinct rules on the device at end
  double staleness_hwm_s = 0.0;         // worst intent -> applied lag

  bool operator==(const DeviceFleetStats&) const = default;
};

/// Fleet-wide aggregates. Conservation (audit_fleet):
///   digests_observed == digests_lost_dark + benign_digests
///                       + dedup_suppressed + install_intents
///   per device: installs_enqueued + backpressure_drops ==
///               install_intents (broadcast) / intents addressed to it
///   per device: installs_enqueued == installs_applied + dead_letters
struct FleetAggregateStats {
  std::size_t devices = 0;
  std::size_t digests_observed = 0;   // merged channel-mouth stream
  std::size_t digests_lost_dark = 0;  // source link partitioned
  std::size_t benign_digests = 0;     // label 0: no install intent
  std::size_t install_intents = 0;    // post-dedup new rules
  std::size_t dedup_suppressed = 0;   // digests for an already-known rule
  std::size_t batches = 0;            // flushes performed
  /// Device-targeted install ops produced by flushes (intents × fan-out);
  /// every one is either enqueued on its device or backpressure-dropped.
  std::size_t install_ops_addressed = 0;
  std::size_t installs_applied = 0;   // sum over devices
  std::size_t dead_letters = 0;       // sum over devices
  std::size_t backlog_hwm = 0;        // fleet-total in-flight installs HWM
  std::size_t devices_degraded_hwm = 0;
  double staleness_hwm_s = 0.0;       // worst lag across the fleet

  bool operator==(const FleetAggregateStats&) const = default;
};

/// Event-clocked central controller. Feed the merged digest stream through
/// on_digest() in (timestamp, device) order, then finish(); all install
/// activity (batch flushes, per-device queues, retries, rejoin catch-ups)
/// happens on the event clock, so two identical runs are byte-identical.
class FleetController {
 public:
  /// One device's failure domain as the fleet controller knows it.
  struct FailureDomain {
    DarkSchedule link;  // partitions: digests AND installs blocked
    DarkSchedule dark;  // partitions + local crashes: installs blocked
    std::uint64_t install_fault_seed = 0;
    std::size_t partitions = 0;
    std::size_t crash_windows = 0;
  };

  /// `metrics` (optional, caller-owned) registers fleet aggregates and
  /// per-device gauges under `<prefix>.*`.
  FleetController(FleetControllerConfig cfg, std::vector<FailureDomain> domains,
                  obs::Registry* metrics = nullptr,
                  std::string_view metrics_prefix = "fleet");

  /// One channel-mouth digest from `device` at event time ts_s. Calls must
  /// arrive in nondecreasing ts_s order.
  void on_digest(std::size_t device, const Digest& d, double ts_s);

  /// Deliver every install op and rejoin catch-up due by now_s.
  void advance_to(double now_s);

  /// End-of-trace drain: flush the pending batch and resolve everything
  /// still in flight, including rejoin re-syncs.
  void finish();

  std::size_t devices() const { return dev_.size(); }
  const FleetAggregateStats& fleet_stats() const { return fleet_; }
  const DeviceFleetStats& device_stats(std::size_t d) const { return dev_[d].st; }
  /// Distinct rules resident on device d (the re-sync source of truth).
  std::size_t rules_resident(std::size_t d) const { return dev_[d].resident.size(); }

 private:
  struct Op {
    std::size_t device = 0;
    std::uint64_t key = 0;
    double intent_ts = 0.0;  // digest timestamp that created the intent
    double due_ts = 0.0;
    std::uint32_t attempt = 0;
    std::uint64_t seq = 0;
  };
  struct Later {
    bool operator()(const Op& a, const Op& b) const {
      return a.due_ts != b.due_ts ? a.due_ts > b.due_ts : a.seq > b.seq;
    }
  };
  struct Device {
    FailureDomain domain;
    SplitMix64 install_faults{0};
    std::size_t queue_len = 0;
    std::size_t next_rejoin = 0;  // index into domain.dark.windows()
    std::unordered_set<std::uint64_t> resident;
    /// Rules that failed to land (backpressure or dead letter) with the
    /// earliest intent timestamp — the rejoin catch-up worklist.
    std::unordered_map<std::uint64_t, double> missed;
    DeviceFleetStats st;
    obs::Gauge obs_queue;
    obs::Gauge obs_rules;
    obs::Gauge obs_staleness;
  };

  double next_rejoin_ts(const Device& dev) const;
  void run_rejoin(std::size_t d, double ts_s);
  void flush_batch(double ts_s);
  void deliver(const Op& op);
  void apply(std::size_t d, std::uint64_t key, double intent_ts, double apply_ts);
  double backoff_delay(std::uint32_t attempt) const;
  void sample(double ts_s);

  struct Obs {
    obs::Counter digests;
    obs::Counter digests_lost_dark;
    obs::Counter intents;
    obs::Counter dedup_suppressed;
    obs::Counter batches;
    obs::Counter installs;
    obs::Counter install_retries;
    obs::Counter dead_letters;
    obs::Counter backpressure_drops;
    obs::Counter catchup_installs;
    obs::Histogram staleness_s;  // intent -> applied, event-clocked
    obs::Series backlog;         // fleet-total in-flight installs
    obs::Series devices_degraded;
  };

  FleetControllerConfig cfg_;
  std::vector<Device> dev_;
  Obs obs_;
  std::priority_queue<Op, std::vector<Op>, Later> ops_;
  /// Pending batch: (key, source device, intent ts), deduped fleet-wide.
  struct Intent {
    std::uint64_t key = 0;
    std::size_t source = 0;
    double ts = 0.0;
  };
  std::vector<Intent> pending_;
  std::unordered_set<std::uint64_t> known_keys_;
  std::size_t total_inflight_ = 0;
  double last_flush_ts_ = 0.0;
  std::uint64_t seq_ = 0;
  double clock_ = 0.0;
  FleetAggregateStats fleet_;
};

struct FleetResult {
  /// Field-wise device merge (merge_stats), pred/truth re-interleaved into
  /// the original trace's packet order. With devices == 1 this is exactly
  /// the single-switch ShardedReplayResult::stats.
  SimStats stats;
  std::vector<SimStats> per_device;
  std::vector<DeviceFleetStats> device_control;
  FleetAggregateStats fleet;
};

/// Device owning a 5-tuple under the fleet's tenant partition.
/// Direction-invariant for both partition modes.
std::size_t device_of(const traffic::FiveTuple& ft, const FleetConfig& cfg);

/// Partition a trace into per-device sub-traces, preserving packet order.
std::vector<traffic::Trace> partition_by_tenant(const traffic::Trace& trace,
                                                const FleetConfig& cfg);

/// Replay `trace` across cfg.devices simulated switches. Phase 1 runs each
/// device's sharded replay in parallel (digest streams captured at the
/// channel mouth); phase 2 feeds the merged stream through a
/// FleetController. Byte-identical to replay_sharded when devices == 1 and
/// fleet faults are off; deterministic at any thread count otherwise.
FleetResult replay_fleet(const traffic::Trace& trace, const PipelineConfig& cfg,
                         const DeployedModel& model, const FleetConfig& fcfg = {});

/// Conservation audits shared by tests/fault_audit.hpp and bench_fleet.
/// Empty string = every identity holds; otherwise the first violated
/// identity, spelled out with both sides' values.
std::string audit_sim_conservation(const SimStats& stats);
std::string audit_fleet_conservation(const FleetResult& result, std::size_t injected_packets);

}  // namespace iguard::switchsim
