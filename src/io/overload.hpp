// Overload control at the ingest boundary (DESIGN.md §4g): a bounded queue
// with an event-clocked drain models the hand-off between the trace source
// and the sharded pipelines. When offered load outruns the configured drain
// rate the queue saturates and a shed policy decides which packet to drop —
// every decision is a pure function of (config, packet stream), so shed
// counts are bit-identical across runs and thread counts, and conservation
// (`offered == admitted + shed`) is auditable in every chaos cell.
//
// The disabled gate — and the enabled gate with an infinite drain
// (drain_rate_pps == 0) — admits every packet unchanged, which is the
// byte-identity switch the parity gates rely on: hardening on, overload
// off must reproduce the plain replay exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trafficgen/packet.hpp"

namespace iguard::io {

enum class ShedPolicy : std::uint8_t {
  kDropNewest = 0,  // arriving packet is shed (tail drop)
  kDropOldest,      // queue head is shed to admit the arrival
  kFlowHash,        // flows hashing under the shed fraction are dropped
                    // coherently while saturated; others displace the oldest
};
std::string_view shed_policy_name(ShedPolicy p);

struct OverloadConfig {
  bool enabled = false;
  std::size_t queue_capacity = 1024;
  /// Event-clocked drain: floor((ts - t0) * rate) packets may have left the
  /// queue by `ts`. 0 means infinite drain — the queue never saturates.
  double drain_rate_pps = 0.0;
  ShedPolicy policy = ShedPolicy::kDropNewest;
  /// Seed of the kFlowHash decision hash. Flow-coherent and time-free: a
  /// flow is either in the shed set or not, so the policy degrades whole
  /// flows instead of poking holes in all of them.
  std::uint64_t seed = 0x51EDu;
  double flow_shed_fraction = 0.5;  // kFlowHash: fraction of flow space shed
};

/// Empty string when well-formed, otherwise the first violated invariant.
/// shed_overload / OverloadGate throw ConfigError on a non-empty result.
std::string validate_config(const OverloadConfig& cfg);

struct OverloadStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t shed_newest = 0;
  std::uint64_t shed_oldest = 0;
  std::uint64_t shed_flow_hash = 0;
  std::size_t queue_hwm = 0;  // backpressure high-water mark

  bool conserved() const {
    return offered == admitted + shed && shed == shed_newest + shed_oldest + shed_flow_hash;
  }
  bool operator==(const OverloadStats&) const = default;
};

/// Deterministic gate. Feed packets in timestamp order via offer(); call
/// flush() after the last packet to drain the residue. Admitted packets
/// come out in arrival order (the queue is FIFO; drop-oldest removes from
/// the front, so relative order is preserved).
class OverloadGate {
 public:
  /// Throws switchsim::ConfigError on an invalid config.
  explicit OverloadGate(const OverloadConfig& cfg);

  /// Offer one packet at its event time; admitted packets (drained queue
  /// head) are appended to `out`.
  void offer(const traffic::Packet& p, std::vector<traffic::Packet>& out);

  /// End of stream: everything still queued is admitted.
  void flush(std::vector<traffic::Packet>& out);

  const OverloadStats& stats() const { return stats_; }
  const OverloadConfig& config() const { return cfg_; }

 private:
  void drain_to(double ts_s, std::vector<traffic::Packet>& out);
  bool flow_in_shed_set(const traffic::FiveTuple& ft) const;

  OverloadConfig cfg_;
  OverloadStats stats_;
  std::vector<traffic::Packet> queue_;  // FIFO via head_ cursor
  std::size_t head_ = 0;
  bool clock_started_ = false;
  double t0_ = 0.0;
  std::uint64_t drained_ = 0;  // packets released by the event clock so far
};

/// Whole-trace convenience: run `trace` through a gate and return the
/// admitted sub-trace plus accounting.
struct ShedResult {
  traffic::Trace admitted;
  OverloadStats stats;
};
ShedResult shed_overload(const traffic::Trace& trace, const OverloadConfig& cfg);

/// Threaded smoke path: move a trace through an SpscRing (producer thread
/// pushes, consumer pops), spinning on backpressure instead of shedding.
/// Order and content are preserved — the ring adds concurrency, not policy —
/// so the output is deterministic even though retry counts are not.
struct RingPumpStats {
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  /// Wall-clock-dependent backpressure spins; NOT deterministic. Export
  /// under "timing." only.
  std::uint64_t push_retries = 0;
  std::uint64_t pop_retries = 0;
};
/// `produce_count` caps how many packets the producer pushes before closing
/// the ring (default: the whole trace). The consumer exits on the ring's
/// close signal, not on an expected count, so a producer that stops early —
/// a truncated source, a shutdown — ends the pump instead of live-locking.
traffic::Trace pump_through_ring(const traffic::Trace& trace, std::size_t ring_capacity,
                                 RingPumpStats& stats,
                                 std::size_t produce_count = static_cast<std::size_t>(-1));

}  // namespace iguard::io
