# Empty compiler generated dependencies file for iguard_rules.
# This may be replaced when dependencies are built.
